"""The unicast baseline the paper normalises against (Sec. IV-A).

"Each device receiving the multicast data based on its own DRX and
without waiting for other devices. Since unicast transmission would not
introduce any additional processes, it is the most efficient way to
receive the data in terms of energy consumption from the device
perspective" — every device is paged at its first PO after the
announce, connects, and is served immediately at its own link rate.

It is of course the *worst* case for bandwidth: N devices need N
transmissions, which is the reference Fig. 7 compares DR-SC against.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.base import GroupingMechanism, PlanningContext
from repro.core.plan import DeviceDirective, MulticastPlan, WakeMethod
from repro.devices.fleet import Fleet


class UnicastBaseline(GroupingMechanism):
    """One transmission per device at its first paging opportunity.

    Grouping is degenerate here — every device is its own group by
    definition — so the baseline accepts (and ignores) a grouping
    policy purely for constructor symmetry with the real mechanisms.
    """

    name = "unicast"
    standards_compliant = True
    respects_preferred_drx = True

    def plan(
        self,
        fleet: Fleet,
        context: PlanningContext,
        rng: Optional[np.random.Generator] = None,
    ) -> MulticastPlan:
        """Page every device at its first PO and serve it immediately."""
        transmissions = []
        directives: List[DeviceDirective] = []
        # Order by realised transmission start (page + connect slack),
        # page frame as tie-break, so transmission indices follow the
        # campaign timeline even in mixed-coverage fleets where a later
        # page with less slack can start earlier.
        def _start_key(i: int) -> tuple:
            page = fleet[i].schedule.first_at_or_after(context.announce_frame)
            return (page + context.connect_slack_frames(fleet[i]), page)

        order = sorted(range(len(fleet)), key=_start_key)
        for index, device_index in enumerate(order):
            device = fleet[device_index]
            page_frame = device.schedule.first_at_or_after(context.announce_frame)
            # The unicast data flows as soon as the device is connected;
            # the nominal transmission frame includes the connect slack.
            start = page_frame + context.connect_slack_frames(device)
            transmissions.append(
                self._build_transmission(
                    index=index,
                    frame=start,
                    device_indices=[device_index],
                    fleet=fleet,
                    payload_bytes=context.payload_bytes,
                )
            )
            directives.append(
                DeviceDirective(
                    device_index=device_index,
                    transmission_index=index,
                    method=WakeMethod.IMMEDIATE_PAGE,
                    page_frame=page_frame,
                    connect_frame=page_frame,
                )
            )
        return MulticastPlan(
            mechanism=self.name,
            standards_compliant=self.standards_compliant,
            respects_preferred_drx=self.respects_preferred_drx,
            announce_frame=context.announce_frame,
            inactivity_timer_frames=context.inactivity_timer_frames,
            payload_bytes=context.payload_bytes,
            transmissions=tuple(transmissions),
            directives=tuple(directives),
        )
