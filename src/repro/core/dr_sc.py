"""DR-SC: DRX-Respecting, Standards-Compliant grouping (paper Sec. III-A).

The mechanism never touches device cycles: devices "share a multicast
transmission only if their POs happen to be closer in time than TI".
Which devices share a window is a *policy* decision
(:mod:`repro.grouping`): the default
:class:`~repro.grouping.policies.GreedyCoverPolicy` is the paper's
greedy set cover (Chvátal) over TI-windows — repeatedly pick the window
containing POs of the most not-yet-updated devices, schedule a
transmission at the window's last frame, remove the covered devices,
repeat (Fig. 4). Alternative policies (exact cover, collision-aware
splitting, coverage stratification, random windows) swap in without
touching the mechanism, but every policy must guarantee that each group
member has a PO inside its group's window under its *preferred* cycle —
DR-SC cannot adapt cycles, so it rejects policies (like single-group)
that cannot promise that.

Trade-off: zero extra light-sleep energy, but many transmissions —
Fig. 7 shows the count stays a large fraction of plain unicast, which
is what disqualifies DR-SC for bandwidth-starved NB-IoT cells.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.base import GroupingMechanism, PlanningContext
from repro.core.plan import DeviceDirective, MulticastPlan, WakeMethod
from repro.devices.fleet import Fleet
from repro.errors import ConfigurationError
from repro.grouping.policies import GreedyCoverPolicy
from repro.grouping.policy import GroupingPolicy


class DrScMechanism(GroupingMechanism):
    """Window-paged grouping over untouched DRX schedules."""

    name = "dr-sc"
    standards_compliant = True
    respects_preferred_drx = True

    def __init__(self, policy: Optional[GroupingPolicy] = None) -> None:
        super().__init__(policy)
        if not self._policy.guarantees_window_po:
            raise ConfigurationError(
                f"dr-sc cannot use grouping policy {self._policy.name!r}: "
                "it does not guarantee every member a PO inside its group "
                "window, and dr-sc cannot adapt cycles to create one"
            )

    def _default_policy(self) -> GroupingPolicy:
        return GreedyCoverPolicy()

    def plan(
        self,
        fleet: Fleet,
        context: PlanningContext,
        rng: Optional[np.random.Generator] = None,
    ) -> MulticastPlan:
        """Turn the policy's grouping into a window-paged plan.

        ``rng`` drives the policy's randomness (for the default greedy
        cover, the paper's random tie-breaking between equally good
        windows); passing None makes the default planning deterministic
        (earliest window wins ties).
        """
        ti = context.inactivity_timer_frames
        decision = self._policy.group(fleet, context, rng)

        # Policies return groups in selection order; renumber them in
        # time order so transmission indices follow the campaign timeline.
        transmissions = []
        directives: List[DeviceDirective] = []
        for new_index, group in enumerate(self._groups_in_time_order(decision)):
            window = group.window
            transmission = self._build_transmission(
                index=new_index,
                frame=window.last_frame,
                device_indices=[int(i) for i in group.members],
                fleet=fleet,
                payload_bytes=context.payload_bytes,
            )
            transmissions.append(transmission)
            for device_index in transmission.device_indices:
                device = fleet[device_index]
                page_frame = self._page_frame_in_window(
                    device.schedule,
                    window.start,
                    window.last_frame,
                    context.connect_slack_frames(device),
                )
                directives.append(
                    DeviceDirective(
                        device_index=device_index,
                        transmission_index=new_index,
                        method=WakeMethod.PAGED_IN_WINDOW,
                        page_frame=page_frame,
                        connect_frame=page_frame,
                    )
                )

        return MulticastPlan(
            mechanism=self.name,
            standards_compliant=self.standards_compliant,
            respects_preferred_drx=self.respects_preferred_drx,
            announce_frame=context.announce_frame,
            inactivity_timer_frames=ti,
            payload_bytes=context.payload_bytes,
            transmissions=tuple(transmissions),
            directives=tuple(directives),
            grouping=self.grouping_name,
        )
