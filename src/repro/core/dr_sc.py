"""DR-SC: DRX-Respecting, Standards-Compliant grouping (paper Sec. III-A).

The mechanism never touches device cycles: devices "share a multicast
transmission only if their POs happen to be closer in time than TI".
Covering all devices with the fewest TI-windows is the NP-hard set cover
problem, approximated greedily (Chvátal): repeatedly pick the TI-window
containing POs of the most not-yet-updated devices, schedule a
transmission at the window's last frame, remove the covered devices,
repeat (Fig. 4). The PO pattern of the whole fleet repeats with period
``max cycle`` (every ladder cycle divides the longest one), so searching
the paper's horizon of twice the largest DRX cycle suffices.

Trade-off: zero extra light-sleep energy, but many transmissions —
Fig. 7 shows the count stays a large fraction of plain unicast, which
is what disqualifies DR-SC for bandwidth-starved NB-IoT cells.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.base import GroupingMechanism, PlanningContext
from repro.core.plan import DeviceDirective, MulticastPlan, WakeMethod
from repro.devices.fleet import Fleet
from repro.drx.schedule import PoSchedule
from repro.setcover.greedy import greedy_window_cover


class DrScMechanism(GroupingMechanism):
    """Greedy TI-window set cover over untouched DRX schedules."""

    name = "dr-sc"
    standards_compliant = True
    respects_preferred_drx = True

    def plan(
        self,
        fleet: Fleet,
        context: PlanningContext,
        rng: Optional[np.random.Generator] = None,
    ) -> MulticastPlan:
        """Cover the fleet with greedy TI-windows.

        ``rng`` drives the paper's random tie-breaking between equally
        good windows; passing None makes planning deterministic
        (earliest window wins ties).
        """
        ti = context.inactivity_timer_frames
        horizon_start = context.announce_frame
        horizon_end = horizon_start + 2 * int(fleet.max_cycle)

        cover = greedy_window_cover(
            fleet.phases,
            fleet.periods,
            window_len=ti,
            horizon_start=horizon_start,
            horizon_end=horizon_end,
            rng=rng,
        )

        # The greedy returns windows in coverage order; renumber them in
        # time order so transmission indices follow the campaign timeline.
        order = np.argsort([w.last_frame for w in cover.windows], kind="stable")
        transmissions = []
        directives: List[DeviceDirective] = []
        for new_index, old_index in enumerate(order):
            window = cover.windows[old_index]
            members = cover.assignments[old_index]
            transmission = self._build_transmission(
                index=new_index,
                frame=window.last_frame,
                device_indices=[int(i) for i in members],
                fleet=fleet,
                payload_bytes=context.payload_bytes,
            )
            transmissions.append(transmission)
            for device_index in transmission.device_indices:
                device = fleet[device_index]
                page_frame = self._page_frame_in_window(
                    device.schedule,
                    window.start,
                    window.last_frame,
                    context.connect_slack_frames(device),
                )
                directives.append(
                    DeviceDirective(
                        device_index=device_index,
                        transmission_index=new_index,
                        method=WakeMethod.PAGED_IN_WINDOW,
                        page_frame=page_frame,
                        connect_frame=page_frame,
                    )
                )

        return MulticastPlan(
            mechanism=self.name,
            standards_compliant=self.standards_compliant,
            respects_preferred_drx=self.respects_preferred_drx,
            announce_frame=context.announce_frame,
            inactivity_timer_frames=ti,
            payload_bytes=context.payload_bytes,
            transmissions=tuple(transmissions),
            directives=tuple(directives),
        )
