"""Shared validation for probability/share distributions.

Both the coverage mix (:class:`repro.traffic.generator.CoverageMix`) and
the per-category cycle distributions
(:class:`repro.traffic.mixtures.CategoryProfile`) require their weights
to sum to 1. They used to check this with *different* tolerances (a raw
``abs(total - 1.0) > 1e-9`` vs ``math.isclose`` with a relative
tolerance), so a distribution accepted by one layer could be rejected by
the other. This module is the single arbiter both layers call.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import ConfigurationError

#: Tolerance for a weight sum to count as 1. Relative and absolute
#: bounds coincide at totals near 1, so the check degrades gracefully
#: for sums built from many small float shares.
UNIT_SUM_REL_TOL = 1e-9
UNIT_SUM_ABS_TOL = 1e-9


def validate_unit_sum(weights: Iterable[float], *, what: str) -> float:
    """Validate that ``weights`` are non-negative and sum to 1.

    Returns the (float) total so callers can reuse it. Raises
    :class:`~repro.errors.ConfigurationError` naming ``what`` otherwise.
    """
    values = [float(w) for w in weights]
    if not values:
        raise ConfigurationError(f"{what} must not be empty")
    if any(w < 0 for w in values):
        raise ConfigurationError(f"{what} must be non-negative, got {values}")
    total = sum(values)
    if not math.isclose(
        total, 1.0, rel_tol=UNIT_SUM_REL_TOL, abs_tol=UNIT_SUM_ABS_TOL
    ):
        raise ConfigurationError(f"{what} must sum to 1, got {total}")
    return total
