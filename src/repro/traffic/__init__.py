"""Traffic / deployment modelling.

The paper's fleets follow "realistic NB-IoT traffic patterns based on
[14]" (Ericsson, *Massive IoT in the City*). The exact mixture is not
published, so this package makes it an explicit parameter: a
:class:`~repro.traffic.mixtures.TrafficMixture` maps device categories
to weights and DRX-cycle distributions, and
:func:`~repro.traffic.generator.generate_fleet` samples a fleet from it.

``PAPER_DEFAULT_MIXTURE`` is calibrated so that the DR-SC transmission
counts reproduce the published Fig. 7 shape (~50 % of N at N=100
falling to ~40 % at N=1000); the ablation mixtures show sensitivity.
"""

from repro.traffic.mixtures import (
    LONG_EDRX_MIXTURE,
    MIXTURES,
    MODERATE_EDRX_MIXTURE,
    PAPER_DEFAULT_MIXTURE,
    SHORT_EDRX_MIXTURE,
    CategoryProfile,
    TrafficMixture,
    mixture_by_name,
)
from repro.traffic.generator import CoverageMix, generate_fleet
from repro.traffic.validation import validate_unit_sum

__all__ = [
    "CategoryProfile",
    "TrafficMixture",
    "MIXTURES",
    "mixture_by_name",
    "PAPER_DEFAULT_MIXTURE",
    "SHORT_EDRX_MIXTURE",
    "MODERATE_EDRX_MIXTURE",
    "LONG_EDRX_MIXTURE",
    "CoverageMix",
    "generate_fleet",
    "validate_unit_sum",
]
