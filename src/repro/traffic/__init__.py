"""Traffic / deployment modelling.

The paper's fleets follow "realistic NB-IoT traffic patterns based on
[14]" (Ericsson, *Massive IoT in the City*). The exact mixture is not
published, so this package makes it an explicit parameter: a
:class:`~repro.traffic.mixtures.TrafficMixture` maps device categories
to weights and DRX-cycle distributions, and
:func:`~repro.traffic.generator.generate_fleet` samples a fleet from it.

``PAPER_DEFAULT_MIXTURE`` is calibrated so that the DR-SC transmission
counts reproduce the published Fig. 7 shape (~50 % of N at N=100
falling to ~40 % at N=1000); the ablation mixtures show sensitivity.
"""

from repro.traffic.mixtures import (
    LONG_EDRX_MIXTURE,
    MODERATE_EDRX_MIXTURE,
    PAPER_DEFAULT_MIXTURE,
    SHORT_EDRX_MIXTURE,
    CategoryProfile,
    TrafficMixture,
)
from repro.traffic.generator import CoverageMix, generate_fleet

__all__ = [
    "CategoryProfile",
    "TrafficMixture",
    "PAPER_DEFAULT_MIXTURE",
    "SHORT_EDRX_MIXTURE",
    "MODERATE_EDRX_MIXTURE",
    "LONG_EDRX_MIXTURE",
    "CoverageMix",
    "generate_fleet",
]
