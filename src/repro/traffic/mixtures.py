"""Device-category mixtures and their DRX-cycle distributions.

A mixture assigns each :class:`~repro.devices.DeviceCategory` a weight
(share of the fleet) and a distribution over eDRX cycles. The defaults
encode the qualitative structure of Ericsson's *Massive IoT in the City*
deployment: the fleet is dominated by utility meters that sleep for
hours, with smaller populations of trackers and sensors on shorter
cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.devices.profiles import DeviceCategory
from repro.drx.cycles import DrxCycle
from repro.errors import ConfigurationError
from repro.traffic.validation import validate_unit_sum


@dataclass(frozen=True)
class CategoryProfile:
    """One category's share of the fleet and its DRX-cycle distribution.

    Attributes:
        weight: relative share of the fleet (normalised across the
            mixture).
        cycle_distribution: probability of each DRX cycle within the
            category (must sum to 1).
    """

    weight: float
    cycle_distribution: Mapping[DrxCycle, float]

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(f"weight must be positive, got {self.weight}")
        if not self.cycle_distribution:
            raise ConfigurationError("cycle distribution must not be empty")
        validate_unit_sum(
            self.cycle_distribution.values(), what="cycle distribution"
        )


class TrafficMixture:
    """A named mixture of device categories."""

    def __init__(
        self, name: str, profiles: Mapping[DeviceCategory, CategoryProfile]
    ) -> None:
        if not profiles:
            raise ConfigurationError("a mixture needs at least one category")
        self._name = name
        self._profiles = dict(profiles)
        total = sum(p.weight for p in self._profiles.values())
        self._normalised: Dict[DeviceCategory, float] = {
            c: p.weight / total for c, p in self._profiles.items()
        }

    @property
    def name(self) -> str:
        """Mixture label (used in reports)."""
        return self._name

    @property
    def categories(self) -> Tuple[DeviceCategory, ...]:
        """Categories present in the mixture."""
        return tuple(self._profiles)

    def category_share(self, category: DeviceCategory) -> float:
        """Normalised fleet share of ``category``."""
        return self._normalised[category]

    def cycle_distribution(self, category: DeviceCategory) -> Mapping[DrxCycle, float]:
        """DRX-cycle distribution of ``category``."""
        return dict(self._profiles[category].cycle_distribution)

    def sample(
        self, n: int, rng: np.random.Generator
    ) -> List[Tuple[DeviceCategory, DrxCycle]]:
        """Draw ``n`` (category, cycle) pairs from the mixture."""
        cat_idx, periods = self.sample_columns(n, rng)
        categories = list(self._normalised)
        by_frames = {int(c): c for p in self._profiles.values()
                     for c in p.cycle_distribution}
        return [
            (categories[int(i)], by_frames[int(frames)])
            for i, frames in zip(cat_idx, periods)
        ]

    def sample_columns(
        self, n: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` devices as columns: (category index, cycle frames).

        Consumes the *identical* RNG stream as the per-device reference
        loop (:meth:`sample_reference`) — the cycle draw mirrors
        ``Generator.choice(k, p=...)``'s internals (one uniform double
        per device, searchsorted on the normalised CDF) — but runs
        vectorised, which is what makes 10^6-device fleet generation
        columnar end to end. Category indices index :attr:`categories`.
        """
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        categories = list(self._normalised)
        weights = np.array([self._normalised[c] for c in categories])
        cat_idx = np.asarray(
            rng.choice(len(categories), size=n, p=weights), dtype=np.int64
        )
        uniforms = rng.random(n)
        periods = np.empty(n, dtype=np.int64)
        for k, category in enumerate(categories):
            dist = self._profiles[category].cycle_distribution
            frames = np.array([int(c) for c in dist], dtype=np.int64)
            probs = np.array([dist[c] for c in dist], dtype=np.float64)
            cdf = probs.cumsum()
            cdf /= cdf[-1]
            mask = cat_idx == k
            periods[mask] = frames[
                np.searchsorted(cdf, uniforms[mask], side="right")
            ]
        return cat_idx, periods

    def sample_reference(
        self, n: int, rng: np.random.Generator
    ) -> List[Tuple[DeviceCategory, DrxCycle]]:
        """The per-device reference loop (equivalence oracle).

        Kept verbatim from the pre-columnar implementation; the test
        suite pins ``sample_columns`` to this stream draw for draw.
        """
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        categories = list(self._normalised)
        weights = np.array([self._normalised[c] for c in categories])
        cat_idx = rng.choice(len(categories), size=n, p=weights)
        out: List[Tuple[DeviceCategory, DrxCycle]] = []
        for i in cat_idx:
            category = categories[int(i)]
            dist = self._profiles[category].cycle_distribution
            cycles = list(dist)
            probs = np.array([dist[c] for c in cycles])
            cycle = cycles[int(rng.choice(len(cycles), p=probs))]
            out.append((category, cycle))
        return out

    @property
    def mean_inverse_cycle_s(self) -> float:
        """E[1/T] in 1/seconds — the PO density of a random device.

        This drives how likely two random devices are to share a
        TI-window (analysis helper used by :mod:`repro.analysis.theory`).
        """
        total = 0.0
        for category, share in self._normalised.items():
            for cycle, p in self._profiles[category].cycle_distribution.items():
                total += share * p / cycle.seconds
        return total

    @property
    def max_cycle(self) -> DrxCycle:
        """Longest cycle any category can draw."""
        longest = max(
            max(profile.cycle_distribution)
            for profile in self._profiles.values()
        )
        return longest

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrafficMixture({self._name!r}, categories={len(self._profiles)})"


def _c(seconds: float) -> DrxCycle:
    return DrxCycle.from_seconds(seconds)


#: Calibrated default: the two-tier city deployment of Ericsson's
#: *Massive IoT in the City* — a battery-maximising metering tier at the
#: top of the eDRX ladder (55 %) plus a reachability-constrained tier of
#: trackers/actuators on short eDRX (45 %). Calibrated so DR-SC's Fig. 7
#: curve starts at ~50 % of N for small fleets and passes ~40 % in the
#: mid hundreds (see EXPERIMENTS.md for the full measured curve and the
#: N=1000 discussion).
PAPER_DEFAULT_MIXTURE = TrafficMixture(
    "paper-default",
    {
        DeviceCategory.SMART_METER: CategoryProfile(
            weight=0.40,
            cycle_distribution={_c(10485.76): 1.0},
        ),
        DeviceCategory.ENVIRONMENT_SENSOR: CategoryProfile(
            weight=0.15,
            cycle_distribution={_c(10485.76): 1.0},
        ),
        DeviceCategory.ASSET_TRACKER: CategoryProfile(
            weight=0.20,
            cycle_distribution={_c(20.48): 0.50, _c(40.96): 0.50},
        ),
        DeviceCategory.PARKING_SENSOR: CategoryProfile(
            weight=0.15,
            cycle_distribution={_c(40.96): 0.50, _c(81.92): 0.50},
        ),
        DeviceCategory.SMOKE_DETECTOR: CategoryProfile(
            weight=0.10,
            cycle_distribution={_c(20.48): 1.0},
        ),
    },
)

#: Responsive fleet: every device on the shortest eDRX values.
SHORT_EDRX_MIXTURE = TrafficMixture(
    "short-edrx",
    {
        DeviceCategory.GENERIC: CategoryProfile(
            weight=1.0,
            cycle_distribution={
                _c(20.48): 0.25,
                _c(40.96): 0.25,
                _c(81.92): 0.25,
                _c(163.84): 0.25,
            },
        ),
    },
)

#: Middle-of-the-road fleet (minutes-scale cycles).
MODERATE_EDRX_MIXTURE = TrafficMixture(
    "moderate-edrx",
    {
        DeviceCategory.GENERIC: CategoryProfile(
            weight=1.0,
            cycle_distribution={
                _c(163.84): 0.25,
                _c(327.68): 0.25,
                _c(655.36): 0.25,
                _c(1310.72): 0.25,
            },
        ),
    },
)

#: Battery-maximising fleet: everything at the top of the eDRX ladder.
LONG_EDRX_MIXTURE = TrafficMixture(
    "long-edrx",
    {
        DeviceCategory.GENERIC: CategoryProfile(
            weight=1.0,
            cycle_distribution={
                _c(2621.44): 0.25,
                _c(5242.88): 0.35,
                _c(10485.76): 0.40,
            },
        ),
    },
)

#: Every built-in mixture, keyed by its name. Scenario specs reference
#: mixtures by name (a string survives pickling to process-pool workers
#: and fingerprints stably), resolved through :func:`mixture_by_name`.
MIXTURES: Dict[str, TrafficMixture] = {
    mixture.name: mixture
    for mixture in (
        PAPER_DEFAULT_MIXTURE,
        SHORT_EDRX_MIXTURE,
        MODERATE_EDRX_MIXTURE,
        LONG_EDRX_MIXTURE,
    )
}


def mixture_by_name(name: str) -> TrafficMixture:
    """Look up a built-in mixture by its registry name."""
    try:
        return MIXTURES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown mixture {name!r}; available: {sorted(MIXTURES)}"
        ) from None
