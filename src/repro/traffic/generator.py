"""Fleet generation from a traffic mixture.

Sampling is fully driven by a caller-supplied :class:`numpy.random.Generator`
so Monte-Carlo runs are reproducible and independent (the harness spawns
one child generator per run via :mod:`repro.sim.rng`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.devices.arrays import CATEGORY_CODE, FleetArrays
from repro.devices.battery import Battery
from repro.devices.fleet import Fleet
from repro.drx.paging import NB
from repro.errors import ConfigurationError
from repro.phy.coverage import CoverageClass
from repro.traffic.mixtures import TrafficMixture
from repro.traffic.validation import validate_unit_sum

#: IMSIs are drawn from this many distinct values (a national operator range).
_IMSI_BASE = 234_150_000_000_000
_IMSI_RANGE = 10_000_000


@dataclass(frozen=True)
class CoverageMix:
    """Shares of devices per coverage class (must sum to 1)."""

    normal: float = 1.0
    robust: float = 0.0
    extreme: float = 0.0

    def __post_init__(self) -> None:
        validate_unit_sum(
            (self.normal, self.robust, self.extreme), what="coverage shares"
        )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` coverage classes."""
        classes = np.array(
            [CoverageClass.NORMAL, CoverageClass.ROBUST, CoverageClass.EXTREME]
        )
        probs = np.array([self.normal, self.robust, self.extreme])
        return rng.choice(classes, size=n, p=probs)

    def sample_codes(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` coverage codes (indices into ``COVERAGE_ORDER``).

        Identical RNG stream to :meth:`sample` — drawing indices instead
        of enum members skips the object array entirely. The index order
        matches the ``CoverageClass`` declaration order, which is the
        canonical code order of :data:`repro.devices.arrays.COVERAGE_ORDER`.
        """
        probs = np.array([self.normal, self.robust, self.extreme])
        return np.asarray(
            rng.choice(len(probs), size=n, p=probs), dtype=np.int64
        )


#: The paper's single-cell evaluation does not model deep-coverage
#: devices, so the default places everyone in normal coverage.
UNIFORM_NORMAL_COVERAGE = CoverageMix()

#: A more physical urban split used by the coverage ablation.
URBAN_COVERAGE = CoverageMix(normal=0.80, robust=0.15, extreme=0.05)


def generate_fleet(
    n: int,
    mixture: TrafficMixture,
    rng: np.random.Generator,
    *,
    coverage_mix: CoverageMix = UNIFORM_NORMAL_COVERAGE,
    nb: NB = NB.ONE_T,
    battery: Optional[Battery] = None,
) -> Fleet:
    """Sample a fleet of ``n`` devices from ``mixture``.

    IMSIs are drawn without replacement from an operator-sized range, so
    UE_ID collisions (devices sharing paging occasions) occur at their
    natural rate rather than never.

    The fleet is built columnar-first: the sampled draws land directly
    in a :class:`FleetArrays` (paging phases derived vectorised) and no
    device object is ever instantiated, so generating 10^6 devices costs
    flat arrays rather than a million frozen dataclasses. The RNG stream
    is unchanged from the object-first implementation.
    """
    if n < 1:
        raise ConfigurationError(f"fleet size must be >= 1, got {n}")
    if n > _IMSI_RANGE:
        raise ConfigurationError(
            f"fleet size {n} exceeds the IMSI pool ({_IMSI_RANGE})"
        )
    imsis = rng.choice(_IMSI_RANGE, size=n, replace=False) + _IMSI_BASE
    cat_idx, periods = mixture.sample_columns(n, rng)
    coverage_codes = coverage_mix.sample_codes(n, rng)
    mixture_code = np.array(
        [CATEGORY_CODE[category] for category in mixture.categories],
        dtype=np.int64,
    )
    arrays = FleetArrays.from_columns(
        imsis=np.asarray(imsis, dtype=np.int64),
        periods=periods,
        coverage_codes=coverage_codes,
        category_codes=mixture_code[cat_idx],
        nb=nb,
        battery=battery,
    )
    return Fleet.from_arrays(arrays)
