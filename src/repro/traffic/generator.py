"""Fleet generation from a traffic mixture.

Sampling is fully driven by a caller-supplied :class:`numpy.random.Generator`
so Monte-Carlo runs are reproducible and independent (the harness spawns
one child generator per run via :mod:`repro.sim.rng`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.devices.arrays import CATEGORY_CODE, FleetArrays
from repro.devices.battery import Battery
from repro.devices.fleet import Fleet
from repro.drx.paging import NB
from repro.errors import ConfigurationError
from repro.phy.coverage import CoverageClass
from repro.traffic.mixtures import TrafficMixture
from repro.traffic.validation import validate_unit_sum

#: IMSIs are drawn from this many distinct values (a national operator range).
_IMSI_BASE = 234_150_000_000_000
_IMSI_RANGE = 10_000_000

#: Fleet sizes up to this keep the historical ``Generator.choice``
#: draw — the stream every golden pin (scenario metrics, event-log
#: pins, equivalence benches) was recorded under. Larger fleets switch
#: to the O(n) rejection sampler: no pinned artifact covers them, and
#: ``Generator.choice(replace=False)`` materialises a permutation of
#: the whole operator-sized pool on NumPy < 1.25 (tens of seconds at
#: 10^6 devices).
_DIRECT_DRAW_MAX = 100_000

#: ``sample_imsis`` draw strategies (``auto`` picks by fleet size).
IMSI_SAMPLER_METHODS = ("auto", "direct", "rejection")


def _rejection_sample(n: int, rng: np.random.Generator) -> np.ndarray:
    """O(n) without-replacement draw of ``n`` values from the IMSI pool.

    Batched rejection: draw candidates uniformly, keep each batch's
    first occurrences in draw order, drop values already taken, repeat
    until ``n`` are collected. The batch size oversamples by the
    remaining pool's collision rate, so the expected total work is
    O(n) even for draws that consume most of the pool. The output
    order is the first-draw order — a pure function of the generator
    stream, independent of batch boundaries' timing.
    """
    taken = np.zeros(_IMSI_RANGE, dtype=bool)
    out = np.empty(n, dtype=np.int64)
    filled = 0
    while filled < n:
        need = n - filled
        fresh_fraction = (_IMSI_RANGE - filled) / _IMSI_RANGE
        batch = int(need / fresh_fraction * 1.1) + 16
        candidates = rng.integers(0, _IMSI_RANGE, size=batch, dtype=np.int64)
        # np.unique(return_index) gives one index per distinct value;
        # sorting those indices restores first-occurrence draw order.
        first_seen = np.sort(np.unique(candidates, return_index=True)[1])
        candidates = candidates[first_seen]
        fresh = candidates[~taken[candidates]][:need]
        taken[fresh] = True
        out[filled : filled + fresh.size] = fresh
        filled += fresh.size
    return out


def sample_imsis(
    n: int, rng: np.random.Generator, *, method: str = "auto"
) -> np.ndarray:
    """Draw ``n`` distinct IMSIs without replacement from the pool.

    ``method="direct"`` is the historical ``Generator.choice`` draw
    (the stream the golden pins were recorded under);
    ``method="rejection"`` is the O(n) batched rejection sampler used
    for fleets beyond any pinned size; ``method="auto"`` (the default)
    selects by fleet size at the :data:`_DIRECT_DRAW_MAX` threshold, so
    every golden-covered size keeps its exact stream while 10^6-device
    fleets sample in O(n). Both methods guarantee the returned IMSIs
    are unique, in range, and exactly ``n`` strong — the fleet
    constructors trust this instead of rescanning the column.
    """
    if method not in IMSI_SAMPLER_METHODS:
        raise ConfigurationError(
            f"IMSI sampler method must be one of {IMSI_SAMPLER_METHODS}, "
            f"got {method!r}"
        )
    if n < 1:
        raise ConfigurationError(f"fleet size must be >= 1, got {n}")
    if n > _IMSI_RANGE:
        raise ConfigurationError(
            f"fleet size {n} exceeds the IMSI pool ({_IMSI_RANGE})"
        )
    if method == "auto":
        method = "direct" if n <= _DIRECT_DRAW_MAX else "rejection"
    if method == "direct":
        drawn = np.asarray(
            rng.choice(_IMSI_RANGE, size=n, replace=False), dtype=np.int64
        )
    else:
        drawn = _rejection_sample(n, rng)
    return drawn + _IMSI_BASE


@dataclass(frozen=True)
class CoverageMix:
    """Shares of devices per coverage class (must sum to 1)."""

    normal: float = 1.0
    robust: float = 0.0
    extreme: float = 0.0

    def __post_init__(self) -> None:
        validate_unit_sum(
            (self.normal, self.robust, self.extreme), what="coverage shares"
        )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` coverage classes."""
        classes = np.array(
            [CoverageClass.NORMAL, CoverageClass.ROBUST, CoverageClass.EXTREME]
        )
        probs = np.array([self.normal, self.robust, self.extreme])
        return rng.choice(classes, size=n, p=probs)

    def sample_codes(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` coverage codes (indices into ``COVERAGE_ORDER``).

        Identical RNG stream to :meth:`sample` — drawing indices instead
        of enum members skips the object array entirely. The index order
        matches the ``CoverageClass`` declaration order, which is the
        canonical code order of :data:`repro.devices.arrays.COVERAGE_ORDER`.
        """
        probs = np.array([self.normal, self.robust, self.extreme])
        return np.asarray(
            rng.choice(len(probs), size=n, p=probs), dtype=np.int64
        )


#: The paper's single-cell evaluation does not model deep-coverage
#: devices, so the default places everyone in normal coverage.
UNIFORM_NORMAL_COVERAGE = CoverageMix()

#: A more physical urban split used by the coverage ablation.
URBAN_COVERAGE = CoverageMix(normal=0.80, robust=0.15, extreme=0.05)


def generate_fleet(
    n: int,
    mixture: TrafficMixture,
    rng: np.random.Generator,
    *,
    coverage_mix: CoverageMix = UNIFORM_NORMAL_COVERAGE,
    nb: NB = NB.ONE_T,
    battery: Optional[Battery] = None,
    out: Optional[Mapping[str, np.ndarray]] = None,
) -> Fleet:
    """Sample a fleet of ``n`` devices from ``mixture``.

    IMSIs are drawn without replacement from an operator-sized range, so
    UE_ID collisions (devices sharing paging occasions) occur at their
    natural rate rather than never. The draw is :func:`sample_imsis`:
    stream-identical to the historical ``Generator.choice`` draw up to
    the golden-pinned sizes, O(n) rejection sampling beyond them.

    The fleet is built columnar-first: the sampled draws land directly
    in a :class:`FleetArrays` (paging phases derived vectorised) and no
    device object is ever instantiated, so generating 10^6 devices costs
    flat arrays rather than a million frozen dataclasses. When ``out``
    supplies writable destination buffers (one per schema column — e.g.
    a staged :class:`~repro.devices.sharedmem.SharedFleet`'s views) the
    columns are built directly inside them, so publishing the fleet to
    shared memory needs no second column-by-column copy.

    The sampler guarantees unique IMSIs by construction, so the
    returned fleet skips the duplicate-IMSI rescan entirely — the
    validate-once half of the trust-the-creator contract.
    """
    imsis = sample_imsis(n, rng)
    cat_idx, periods = mixture.sample_columns(n, rng)
    coverage_codes = coverage_mix.sample_codes(n, rng)
    mixture_code = np.array(
        [CATEGORY_CODE[category] for category in mixture.categories],
        dtype=np.int64,
    )
    arrays = FleetArrays.from_columns(
        imsis=imsis,
        periods=periods,
        coverage_codes=coverage_codes,
        category_codes=mixture_code[cat_idx],
        nb=nb,
        battery=battery,
        out=out,
    )
    return Fleet.from_arrays(arrays, trusted=True)
