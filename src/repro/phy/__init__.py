"""NB-IoT PHY/link-layer timing model.

NB-IoT trades throughput for coverage: deep-coverage devices repeat every
transmission many times, which lowers their sustained data rate by an
order of magnitude or more. The grouping mechanisms never look below
this abstraction — they only need *how long does sending X bytes to this
device (or group) take* and *how long do the control procedures take*,
which is exactly what this package answers.
"""

from repro.phy.coverage import CoverageClass, CoverageProfile, PROFILES
from repro.phy.airtime import (
    AirtimeModel,
    DEFAULT_AIRTIME_MODEL,
    group_data_rate_bps,
    payload_airtime_frames,
    payload_airtime_seconds,
)
from repro.phy.npdsch import COVERAGE_NPDSCH, NpdschConfig, sustained_rate_for

__all__ = [
    "CoverageClass",
    "CoverageProfile",
    "PROFILES",
    "AirtimeModel",
    "DEFAULT_AIRTIME_MODEL",
    "payload_airtime_frames",
    "payload_airtime_seconds",
    "group_data_rate_bps",
    "NpdschConfig",
    "COVERAGE_NPDSCH",
    "sustained_rate_for",
]
