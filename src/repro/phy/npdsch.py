"""Transport-block-level NPDSCH airtime model.

The coarse model in :mod:`repro.phy.airtime` treats the downlink as a
constant-rate pipe. This module refines it to the shape of the actual
NB-IoT downlink shared channel (TS 36.213 §16.4):

* data is sent in **transport blocks** of at most 680 bits (Rel-13
  Cat-NB1) — 2536 bits with Rel-14 Cat-NB2;
* each block occupies ``n_sf`` 1 ms subframes and is **repeated**
  ``2^r`` times for coverage enhancement;
* consecutive blocks are separated by scheduling gaps (NPDCCH grant +
  processing delays), which is what caps sustained goodput far below
  the instantaneous rate.

The model exposes both the per-block timing and the derived sustained
rate, and a self-check in the test suite confirms the derived rates
bracket the coarse per-coverage-class constants used elsewhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.phy.coverage import CoverageClass


@dataclass(frozen=True)
class NpdschConfig:
    """NPDSCH scheduling parameters.

    Attributes:
        tbs_bits: transport block size (<= 680 for Cat-NB1, <= 2536 for
            Cat-NB2).
        subframes_per_block: 1 ms subframes one (unrepeated) block spans.
        repetitions: coverage-enhancement repetition factor (power of 2,
            1..2048 per TS 36.211).
        scheduling_gap_ms: NPDCCH grant + DCI-to-data + HARQ turnaround
            between consecutive blocks.
    """

    tbs_bits: int = 680
    subframes_per_block: int = 3
    repetitions: int = 1
    scheduling_gap_ms: float = 13.0

    #: Rel-13 Cat-NB1 maximum TBS.
    MAX_TBS_CAT_NB1 = 680

    #: Rel-14 Cat-NB2 maximum TBS.
    MAX_TBS_CAT_NB2 = 2536

    def __post_init__(self) -> None:
        if not 16 <= self.tbs_bits <= self.MAX_TBS_CAT_NB2:
            raise ConfigurationError(
                f"TBS must be in [16, {self.MAX_TBS_CAT_NB2}] bits, got "
                f"{self.tbs_bits}"
            )
        if not 1 <= self.subframes_per_block <= 10:
            raise ConfigurationError(
                f"subframes_per_block must be 1..10, got "
                f"{self.subframes_per_block}"
            )
        if self.repetitions < 1 or self.repetitions & (self.repetitions - 1):
            raise ConfigurationError(
                f"repetitions must be a power of two >= 1, got "
                f"{self.repetitions}"
            )
        if self.repetitions > 2048:
            raise ConfigurationError(
                f"repetitions capped at 2048, got {self.repetitions}"
            )
        if self.scheduling_gap_ms < 0:
            raise ConfigurationError(
                f"scheduling gap must be non-negative, got "
                f"{self.scheduling_gap_ms}"
            )

    # ------------------------------------------------------------------
    # Per-block timing
    # ------------------------------------------------------------------
    @property
    def block_airtime_ms(self) -> float:
        """Airtime of one block including repetitions, excluding the gap."""
        return self.subframes_per_block * self.repetitions * 1.0

    @property
    def block_cycle_ms(self) -> float:
        """Grant-to-grant period: airtime plus the scheduling gap."""
        return self.block_airtime_ms + self.scheduling_gap_ms

    @property
    def sustained_rate_bps(self) -> float:
        """Goodput of back-to-back scheduled blocks."""
        return self.tbs_bits / (self.block_cycle_ms / 1000.0)

    # ------------------------------------------------------------------
    # Payload-level queries
    # ------------------------------------------------------------------
    def blocks_for(self, payload_bytes: int) -> int:
        """Transport blocks needed for ``payload_bytes``."""
        if payload_bytes <= 0:
            raise ConfigurationError(
                f"payload must be positive, got {payload_bytes}"
            )
        return math.ceil(payload_bytes * 8 / self.tbs_bits)

    def airtime_seconds(self, payload_bytes: int) -> float:
        """Total delivery time for ``payload_bytes`` (gaps included).

        The final block needs no trailing gap.
        """
        blocks = self.blocks_for(payload_bytes)
        total_ms = blocks * self.block_cycle_ms - self.scheduling_gap_ms
        return total_ms / 1000.0

    def occupancy_seconds(self, payload_bytes: int) -> float:
        """Carrier time actually occupied by NPDSCH subframes."""
        return self.blocks_for(payload_bytes) * self.block_airtime_ms / 1000.0


#: Representative configurations per coverage class: deeper coverage uses
#: heavier repetition and (for EXTREME) a smaller TBS for decodability.
COVERAGE_NPDSCH = {
    CoverageClass.NORMAL: NpdschConfig(
        tbs_bits=680, subframes_per_block=3, repetitions=1,
        scheduling_gap_ms=13.0,
    ),
    CoverageClass.ROBUST: NpdschConfig(
        tbs_bits=680, subframes_per_block=3, repetitions=8,
        scheduling_gap_ms=13.0,
    ),
    CoverageClass.EXTREME: NpdschConfig(
        tbs_bits=328, subframes_per_block=3, repetitions=64,
        scheduling_gap_ms=20.0,
    ),
}


def sustained_rate_for(coverage: CoverageClass) -> float:
    """Sustained NPDSCH goodput of the representative configuration."""
    return COVERAGE_NPDSCH[coverage].sustained_rate_bps
