"""Airtime computation for payloads and control messages.

Everything the uptime evaluation (paper Fig. 6) measures is a sum of
durations: PO monitoring, paging reception, random access, RRC
signalling, waiting for the multicast to start, and the payload
reception itself. :class:`AirtimeModel` centralises those durations so
every mechanism and baseline uses identical timing assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ConfigurationError
from repro.phy.coverage import PROFILES, CoverageClass
from repro.timebase import bits_of, ms_to_frames


@dataclass(frozen=True)
class AirtimeModel:
    """Durations of the elementary radio operations (milliseconds).

    Attributes:
        po_monitor_ms: listening to one empty paging occasion (NPDCCH
            monitoring without a subsequent page).
        paging_message_ms: receiving a paging message addressed to the
            device (NPDCCH + NPDSCH paging transport block).
        paging_extension_ms: extra airtime of the DR-SI
            ``mltc-transmission`` non-critical extension (device id +
            time-to-multicast fields appended to the page).
        rrc_setup_ms: RRC connection setup signalling after the random
            access (Msg5/SetupComplete exchange).
        rrc_reconfiguration_ms: one RRC Connection Reconfiguration
            round-trip (used by DA-SC to impose and to restore cycles).
        rrc_release_ms: the RRC Connection Release exchange.
    """

    po_monitor_ms: float = 10.0
    paging_message_ms: float = 30.0
    paging_extension_ms: float = 10.0
    rrc_setup_ms: float = 120.0
    rrc_reconfiguration_ms: float = 80.0
    rrc_release_ms: float = 40.0

    def __post_init__(self) -> None:
        for field_name in (
            "po_monitor_ms",
            "paging_message_ms",
            "paging_extension_ms",
            "rrc_setup_ms",
            "rrc_reconfiguration_ms",
            "rrc_release_ms",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be non-negative")

    # Convenience second-valued views -----------------------------------
    @property
    def po_monitor_s(self) -> float:
        """Empty-PO monitoring duration in seconds."""
        return self.po_monitor_ms / 1000.0

    @property
    def paging_message_s(self) -> float:
        """Addressed paging message reception duration in seconds."""
        return self.paging_message_ms / 1000.0

    @property
    def extended_paging_s(self) -> float:
        """DR-SI extended page duration (base page + extension) in seconds."""
        return (self.paging_message_ms + self.paging_extension_ms) / 1000.0

    @property
    def rrc_setup_s(self) -> float:
        """RRC setup signalling duration in seconds."""
        return self.rrc_setup_ms / 1000.0

    @property
    def rrc_reconfiguration_s(self) -> float:
        """RRC reconfiguration duration in seconds."""
        return self.rrc_reconfiguration_ms / 1000.0

    @property
    def rrc_release_s(self) -> float:
        """RRC release duration in seconds."""
        return self.rrc_release_ms / 1000.0


#: The timing assumptions shared by all experiments unless overridden.
DEFAULT_AIRTIME_MODEL = AirtimeModel()


def payload_airtime_frames(payload_bytes: int, rate_bps: float) -> int:
    """Frames needed to deliver ``payload_bytes`` at ``rate_bps`` (ceiling)."""
    if rate_bps <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate_bps}")
    seconds = bits_of(payload_bytes) / rate_bps
    return max(1, ms_to_frames(seconds * 1000.0))


def payload_airtime_seconds(payload_bytes: int, rate_bps: float) -> float:
    """Seconds needed to deliver ``payload_bytes`` at ``rate_bps``."""
    if rate_bps <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate_bps}")
    return bits_of(payload_bytes) / rate_bps


def group_data_rate_bps(coverages: Iterable[CoverageClass]) -> float:
    """Multicast bearer rate for a device group.

    The on-demand scheme sets up "a generic multicast bearer based on the
    capabilities of the devices that will use it" (paper Sec. II-A): the
    bearer must be decodable by the worst device, so the group rate is
    the minimum over the members' coverage classes.
    """
    rates = [PROFILES[c].downlink_bps for c in coverages]
    if not rates:
        raise ConfigurationError("cannot size a bearer for an empty group")
    return min(rates)
