"""Coverage classes (CE levels) and their link characteristics.

NB-IoT defines three coverage-enhancement (CE) levels. Devices in bad
coverage (basements, meter cabinets) use heavy repetition on every
channel, which multiplies procedure durations and divides the sustained
NPDSCH data rate. The figures used here are representative of the
published NB-IoT link-budget literature (3GPP TR 45.820 and vendor
datasheets): ~25 kbps sustained downlink in normal coverage, dropping to
a few kbps at the extreme CE level.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigurationError


class CoverageClass(Enum):
    """NB-IoT coverage-enhancement level (CE0/CE1/CE2)."""

    NORMAL = "normal"  # CE0: MCL <= 144 dB
    ROBUST = "robust"  # CE1: MCL <= 154 dB
    EXTREME = "extreme"  # CE2: MCL <= 164 dB

    @property
    def ce_level(self) -> int:
        """The numeric CE level (0, 1, 2)."""
        return {"normal": 0, "robust": 1, "extreme": 2}[self.value]


@dataclass(frozen=True)
class CoverageProfile:
    """Link characteristics of one coverage class.

    Attributes:
        coverage: the class this profile describes.
        downlink_bps: sustained NPDSCH goodput (bits per second).
        repetitions: typical repetition factor applied to control
            channels (drives procedure durations).
        random_access_seconds: end-to-end random access duration
            (NPRACH preamble + RAR window + Msg3 + Msg4 incl. repetitions).
    """

    coverage: CoverageClass
    downlink_bps: float
    repetitions: int
    random_access_seconds: float

    def __post_init__(self) -> None:
        if self.downlink_bps <= 0:
            raise ConfigurationError(
                f"downlink rate must be positive, got {self.downlink_bps}"
            )
        if self.repetitions < 1:
            raise ConfigurationError(
                f"repetition factor must be >= 1, got {self.repetitions}"
            )
        if self.random_access_seconds <= 0:
            raise ConfigurationError(
                f"random access duration must be positive, "
                f"got {self.random_access_seconds}"
            )


#: Default link profiles per coverage class.
PROFILES = {
    CoverageClass.NORMAL: CoverageProfile(
        coverage=CoverageClass.NORMAL,
        downlink_bps=25_000.0,
        repetitions=1,
        random_access_seconds=0.35,
    ),
    CoverageClass.ROBUST: CoverageProfile(
        coverage=CoverageClass.ROBUST,
        downlink_bps=10_000.0,
        repetitions=8,
        random_access_seconds=1.0,
    ),
    CoverageClass.EXTREME: CoverageProfile(
        coverage=CoverageClass.EXTREME,
        downlink_bps=2_000.0,
        repetitions=32,
        random_access_seconds=3.0,
    ),
}
