"""The fused (run x cell) work-queue scheduler.

Parallelism used to be siloed: :mod:`repro.sim.parallel` shards across
Monte-Carlo runs, :meth:`repro.multicast.coordination.CoordinationEntity.
rollout` shards across cells, and the sweep runner drives grid cells one
at a time — so a many-run x many-cell sweep leaves workers idle between
barriers. This module flattens all of that into **one** process pool fed
from a single work queue.

Determinism contract
--------------------
Every task carries a :class:`TaskAddress` ``(campaign, run_index,
cell_index)`` plus an explicit seed-derivation pair ``(seed,
spawn_index)``. The worker derives the task's generator as::

    np.random.default_rng(np.random.SeedSequence(seed).spawn(k)[i])

which depends only on ``(seed, i)`` — a ``SeedSequence`` child's
``spawn_key`` is its spawn position, independent of how many siblings
were spawned alongside it. Run ``i`` therefore sees the exact generator
the serial harness hands it, and cell ``j`` of a run sees the exact
child ``CoordinationEntity.rollout(seed=...)`` derives — results are
bit-identical to the serial path for any worker count and any task
completion order.

Fan-out
-------
A task may return a :class:`FanOut` instead of a result: the scheduler
then enqueues the fan-out's sub-items (e.g. one task per cell of a
multi-cell run) and, once every sub-result has arrived, enqueues a
reduction task that folds them — in canonical sub-item order — into the
parent task's result. The bookkeeping lives in :class:`ReductionLedger`,
which is a pure completion-order-independent state machine: the property
tests drive it with shuffled completion orders and assert the canonical
output never changes.

Dispatch grain
--------------
Submitting one pool task per (run x cell) item prices every item at a
full pickle/IPC round trip — a loss against the serial path when items
are tiny (many cells, few devices each). The scheduler therefore groups
consecutive canonical items into *chunks* (:func:`auto_chunk_size`, or
an explicit ``chunk_size``) and submits each chunk as one task; the
worker runs the chunk's items in order, each with its own derived
generator, and the scheduler unpacks the returned value list into the
exact per-item ledger completions the unchunked path performs. Results
are bit-identical for every chunk size and worker count.
"""

from __future__ import annotations

import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from multiprocessing import resource_tracker
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.parallel import RunFn, default_workers

#: A task function: (rng, address, payload) -> result | FanOut.
TaskFn = Callable[[np.random.Generator, "TaskAddress", Any], Any]

#: A reduction function: (state, sub_results, address) -> result.
ReduceFn = Callable[[Any, List[Any], "TaskAddress"], Any]


@dataclass(frozen=True)
class TaskAddress:
    """The deterministic identity of one work item.

    ``campaign`` names the campaign (a scenario fingerprint, a cache
    tag, ...), ``run_index`` the Monte-Carlo run and ``cell_index`` the
    cell within the run; ``-1`` marks the axis as unused (a run-level
    task has ``cell_index=-1``). Two tasks with the same address compute
    the same thing — the address, not the submission or completion
    order, is what the result is keyed by.
    """

    campaign: str
    run_index: int
    cell_index: int = -1

    def __str__(self) -> str:
        cell = "" if self.cell_index < 0 else f"/cell{self.cell_index}"
        return f"{self.campaign}/run{self.run_index}{cell}"


def derive_task_rng(seed: int, spawn_index: int) -> np.random.Generator:
    """The fixed ``SeedSequence`` child generator of one task.

    Child ``i`` of ``SeedSequence(seed)`` is identical no matter how
    many siblings are spawned, so this is bit-compatible with both
    ``spawn_generators(seed, n)[i]`` (the Monte-Carlo contract) and the
    per-cell children ``rollout(seed=...)`` derives.
    """
    if spawn_index < 0:
        raise ConfigurationError(
            f"spawn_index must be >= 0, got {spawn_index}"
        )
    child = np.random.SeedSequence(seed).spawn(spawn_index + 1)[spawn_index]
    return np.random.default_rng(child)


@dataclass(frozen=True)
class WorkItem:
    """One schedulable task: an address, a function and its seed pair."""

    address: TaskAddress
    fn: TaskFn
    payload: Any
    seed: int
    spawn_index: int


@dataclass(frozen=True)
class FanOut:
    """Returned by a task that expands into sub-tasks.

    ``items`` are scheduled like any other work item; once all their
    results are in, ``reduce_fn(state, results, address)`` runs (on the
    pool) with ``results`` in ``items`` order — the canonical order —
    regardless of completion order. Only top-level tasks may fan out
    (one level keeps the ledger, and the determinism argument, simple).
    """

    items: Tuple[WorkItem, ...]
    reduce_fn: ReduceFn
    state: Any


def _validate_picklable(items: Sequence[WorkItem]) -> None:
    """Reject unpicklable task functions before any pool submission.

    Deduplicated by function identity: a 10^4-item sweep reusing one
    module-level task fn pays for a single ``pickle.dumps``, not one per
    item.
    """
    seen: set = set()
    for item in items:
        key = id(item.fn)
        if key in seen:
            continue
        seen.add(key)
        try:
            pickle.dumps(item.fn)
        except Exception as exc:
            raise ConfigurationError(
                "fused dispatch requires picklable task functions "
                "(module-level function or functools.partial of "
                f"one); got {item.fn!r}: {exc}"
            ) from exc


def _execute_item(item: WorkItem) -> Any:
    """Worker entry point: derive the task generator and run the task."""
    rng = derive_task_rng(item.seed, item.spawn_index)
    return item.fn(rng, item.address, item.payload)


#: Chunks never grow past this: larger grains stop helping amortise the
#: per-task pickle/IPC round trip and start costing scheduling slack.
_MAX_CHUNK_SIZE = 64


def auto_chunk_size(n_items: int, workers: int) -> int:
    """The default dispatch grain for ``n_items`` over ``workers``.

    Aims at ~4 chunks per worker — enough batching to amortise the
    per-task pickle/IPC round trip when items are tiny (the regime
    where fused used to lose to serial), while keeping the queue deep
    enough that an uneven item mix still load-balances. A deterministic
    pure function of ``(n_items, workers)``: the chunk boundaries never
    depend on timing.
    """
    if n_items < 1:
        raise ConfigurationError(f"n_items must be >= 1, got {n_items}")
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return max(1, min(_MAX_CHUNK_SIZE, -(-n_items // (workers * 4))))


def _execute_chunk(items: Tuple[WorkItem, ...]) -> List[Any]:
    """Worker entry point for a chunk: run its items in canonical order.

    Each item still derives its own ``(seed, spawn_index)`` generator,
    so the values are element-for-element identical to ``_execute_item``
    — the chunk only changes how many results ride one IPC round trip.
    """
    return [_execute_item(item) for item in items]


def _execute_reduce(
    reduce_fn: ReduceFn,
    state: Any,
    results: List[Any],
    address: TaskAddress,
) -> Any:
    """Worker entry point for a fan-out's reduction."""
    return reduce_fn(state, results, address)


_UNSET = object()


@dataclass(frozen=True)
class PartialResult:
    """One completion streamed out of the ledger as it lands.

    ``kind`` is ``"top"`` (a top-level task that returned a plain
    value), ``"sub"`` (one fan-out sub-item, e.g. a single cell of a
    multi-cell run) or ``"reduce"`` (a fan-out's folded result filling
    its top-level slot). ``position`` is the sub-item's canonical
    position within its fan-out (None otherwise); ``address`` is the
    completing task's deterministic address when the scheduler knows it.

    Streaming is observational only: the canonical outputs still come
    from :meth:`ReductionLedger.results` in submission order, so
    consuming partials can never perturb determinism.
    """

    kind: str
    top_index: int
    value: Any
    position: Optional[int] = None
    address: Optional[TaskAddress] = None


#: Callback invoked (in the scheduling process) for each streamed
#: :class:`PartialResult`, in completion order.
PartialFn = Callable[[PartialResult], None]


@dataclass
class _Group:
    """One pending fan-out: sub-results accumulate until reduction."""

    top_index: int
    address: TaskAddress
    reduce_fn: ReduceFn
    state: Any
    results: List[Any]
    remaining: int


@dataclass(frozen=True)
class ReadyReduce:
    """A fan-out whose sub-results are all in: reduction can run."""

    top_index: int
    address: TaskAddress
    reduce_fn: ReduceFn
    state: Any
    results: List[Any]


class ReductionLedger:
    """Completion-order-independent reassembly of fused results.

    The scheduler feeds completions in whatever order the pool yields
    them; the ledger slots each one by address and reports what to do
    next (schedule a fan-out's sub-items, run a ready reduction, or
    nothing). ``results()`` returns the top-level results in submission
    order and refuses to answer before every slot is filled — so the
    output is a pure function of the per-task results, not of timing.
    """

    def __init__(self, n_top: int) -> None:
        if n_top < 1:
            raise ConfigurationError(f"need >= 1 top-level task, got {n_top}")
        self._top: List[Any] = [_UNSET] * n_top
        self._groups: Dict[int, _Group] = {}
        self._stream: List[PartialResult] = []

    def partial_results(self) -> Iterator[PartialResult]:
        """Drain the completions streamed since the last drain.

        Yields :class:`PartialResult` records in completion order —
        per-cell results flow out here while sibling cells (and whole
        other runs) are still in flight, instead of waiting for the
        one-reduce-per-run barrier.
        """
        while self._stream:
            yield self._stream.pop(0)

    def complete_top(
        self, index: int, value: Any, address: Optional[TaskAddress] = None
    ) -> Optional[FanOut]:
        """Record a top-level completion; returns a fan-out to schedule.

        A plain value fills the slot; a :class:`FanOut` opens a group
        whose reduction will fill the slot later.
        """
        if not 0 <= index < len(self._top):
            raise ConfigurationError(f"top-level index {index} out of range")
        if self._top[index] is not _UNSET or index in self._groups:
            raise ConfigurationError(
                f"top-level task {index} completed twice"
            )
        if isinstance(value, FanOut):
            if not value.items:
                raise ConfigurationError(
                    "a FanOut needs at least one sub-item"
                )
            self._groups[index] = _Group(
                top_index=index,
                address=value.items[0].address,
                reduce_fn=value.reduce_fn,
                state=value.state,
                results=[_UNSET] * len(value.items),
                remaining=len(value.items),
            )
            return value
        self._top[index] = value
        self._stream.append(
            PartialResult(
                kind="top", top_index=index, value=value, address=address
            )
        )
        return None

    def complete_sub(
        self,
        top_index: int,
        position: int,
        value: Any,
        address: Optional[TaskAddress] = None,
    ) -> Optional[ReadyReduce]:
        """Record one sub-item completion; returns the reduction when
        the group is complete."""
        group = self._groups.get(top_index)
        if group is None:
            raise ConfigurationError(
                f"no open fan-out for top-level task {top_index}"
            )
        if isinstance(value, FanOut):
            raise ConfigurationError(
                "nested fan-out: only top-level tasks may expand"
            )
        if not 0 <= position < len(group.results):
            raise ConfigurationError(
                f"sub-item position {position} out of range"
            )
        if group.results[position] is not _UNSET:
            raise ConfigurationError(
                f"sub-item {top_index}/{position} completed twice"
            )
        group.results[position] = value
        self._stream.append(
            PartialResult(
                kind="sub",
                top_index=top_index,
                value=value,
                position=position,
                address=address,
            )
        )
        group.remaining -= 1
        if group.remaining:
            return None
        del self._groups[top_index]
        return ReadyReduce(
            top_index=top_index,
            address=group.address,
            reduce_fn=group.reduce_fn,
            state=group.state,
            results=list(group.results),
        )

    def complete_reduce(
        self,
        top_index: int,
        value: Any,
        address: Optional[TaskAddress] = None,
    ) -> None:
        """Record a reduction's result into its top-level slot."""
        if not 0 <= top_index < len(self._top):
            raise ConfigurationError(
                f"top-level index {top_index} out of range"
            )
        if self._top[top_index] is not _UNSET:
            raise ConfigurationError(
                f"top-level task {top_index} completed twice"
            )
        if isinstance(value, FanOut):
            raise ConfigurationError(
                "nested fan-out: a reduction may not expand"
            )
        self._top[top_index] = value
        self._stream.append(
            PartialResult(
                kind="reduce",
                top_index=top_index,
                value=value,
                address=address,
            )
        )

    @property
    def done(self) -> bool:
        """True once every top-level slot holds a result."""
        return not self._groups and all(
            slot is not _UNSET for slot in self._top
        )

    def results(self) -> List[Any]:
        """Top-level results in canonical (submission) order."""
        if not self.done:
            raise ConfigurationError(
                "fused campaign incomplete: results are only available "
                "once every task has completed"
            )
        return list(self._top)


class FusedScheduler:
    """One process pool draining a flattened (run x cell) work queue.

    ``chunk_size`` sets the dispatch grain: the scheduler groups
    consecutive canonical items into chunks of that size and submits
    each chunk as one pool task (one pickle/IPC round trip for the
    whole chunk), then unpacks the returned values into exactly the
    per-item ledger completions the unchunked path performs. ``None``
    (the default) picks :func:`auto_chunk_size` per batch; ``1`` is
    bit-for-bit the per-item submission path. Results are identical for
    every chunk size because each item keeps its own derived generator
    and the ledger is completion-order-independent.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        workers = default_workers() if workers is None else workers
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self._workers = workers
        self._chunk_size = chunk_size

    @property
    def workers(self) -> int:
        """Pool size."""
        return self._workers

    @property
    def chunk_size(self) -> Optional[int]:
        """The configured dispatch grain (None = auto per batch)."""
        return self._chunk_size

    def _grain(self, n_items: int) -> int:
        """The chunk size for one batch of ``n_items`` sibling tasks."""
        if self._chunk_size is not None:
            return self._chunk_size
        return auto_chunk_size(n_items, self._workers)

    def run(
        self,
        items: Sequence[WorkItem],
        on_partial: Optional[PartialFn] = None,
    ) -> List[Any]:
        """Execute every item (and whatever it fans out into).

        Returns the per-item results in submission order; fan-out items
        resolve to their reduction's result. Everything — task
        functions, payloads, fan-out states, results — must be
        picklable. ``on_partial`` (if given) is called in this process
        for every streamed :class:`PartialResult` as completions land —
        per-cell results surface while the rest of the queue is still
        draining.
        """
        items = list(items)
        if not items:
            raise ConfigurationError("no work items to dispatch")
        _validate_picklable(items)

        ledger = ReductionLedger(len(items))

        def drain() -> None:
            for partial in ledger.partial_results():
                if on_partial is not None:
                    on_partial(partial)

        # Start the resource tracker before the pool forks: every
        # worker then inherits the same tracker, which is what makes
        # shared-memory fleet registrations idempotent across processes
        # (see repro.devices.sharedmem's lifecycle contract).
        resource_tracker.ensure_running()
        with ProcessPoolExecutor(max_workers=self._workers) as pool:
            #: future -> ("top", start, chunk_items)
            #:        | ("sub", top_index, start, chunk_items)
            #:        | ("reduce", top_index)
            #: A chunk's items ride in the slot so completions can be
            #: unpacked against their canonical addresses.
            pending: Dict[Any, Tuple] = {}

            def submit_top(batch: Sequence[WorkItem]) -> None:
                grain = self._grain(len(batch))
                for start in range(0, len(batch), grain):
                    chunk = tuple(batch[start : start + grain])
                    pending[pool.submit(_execute_chunk, chunk)] = (
                        "top", start, chunk,
                    )

            def submit_sub(top_index: int, fanout: FanOut) -> None:
                grain = self._grain(len(fanout.items))
                for start in range(0, len(fanout.items), grain):
                    chunk = tuple(fanout.items[start : start + grain])
                    pending[pool.submit(_execute_chunk, chunk)] = (
                        "sub", top_index, start, chunk,
                    )

            def submit_reduce(ready: ReadyReduce) -> None:
                pending[
                    pool.submit(
                        _execute_reduce,
                        ready.reduce_fn,
                        ready.state,
                        ready.results,
                        ready.address,
                    )
                ] = ("reduce", ready.top_index, ready.address)

            submit_top(items)
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    slot = pending.pop(future)
                    value = future.result()
                    if slot[0] == "top":
                        _, start, chunk = slot
                        for offset, (item, result) in enumerate(
                            zip(chunk, value)
                        ):
                            fanout = ledger.complete_top(
                                start + offset,
                                result,
                                address=item.address,
                            )
                            if fanout is not None:
                                submit_sub(start + offset, fanout)
                    elif slot[0] == "sub":
                        _, top_index, start, chunk = slot
                        for offset, (item, result) in enumerate(
                            zip(chunk, value)
                        ):
                            ready = ledger.complete_sub(
                                top_index,
                                start + offset,
                                result,
                                address=item.address,
                            )
                            if ready is not None:
                                submit_reduce(ready)
                    else:
                        ledger.complete_reduce(
                            slot[1], value, address=slot[2]
                        )
                    drain()
        drain()
        return ledger.results()


def execute_items(
    items: Sequence[WorkItem],
    workers: Optional[int] = None,
    on_partial: Optional[PartialFn] = None,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """One-call front: dispatch ``items`` through a fused scheduler."""
    return FusedScheduler(workers=workers, chunk_size=chunk_size).run(
        items, on_partial=on_partial
    )


# ----------------------------------------------------------------------
# Flat-map adapters (the montecarlo / rollout consumer surface)
# ----------------------------------------------------------------------
def _metric_task(
    rng: np.random.Generator, address: TaskAddress, payload: Any
) -> Dict[str, float]:
    """One Monte-Carlo run as a fused task (floats cross back, like the
    process backend's worker-side coercion)."""
    fn = payload
    return {k: float(v) for k, v in fn(rng, address.run_index).items()}


def run_fused(
    fn: RunFn,
    seed: int,
    n_runs: int,
    workers: Optional[int] = None,
    campaign: str = "montecarlo",
    on_partial: Optional[PartialFn] = None,
    chunk_size: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Execute a Monte-Carlo run function through the fused queue.

    The flat counterpart of :func:`repro.sim.parallel.run_in_processes`:
    run ``i`` is one work item addressed ``(campaign, i, -1)`` with the
    standard child generator, so the per-run metric dicts are
    bit-identical to the serial and process backends.
    """
    if n_runs < 1:
        raise ConfigurationError(f"n_runs must be >= 1, got {n_runs}")
    items = [
        WorkItem(
            address=TaskAddress(campaign, run_index),
            fn=_metric_task,
            payload=fn,
            seed=seed,
            spawn_index=run_index,
        )
        for run_index in range(n_runs)
    ]
    return execute_items(
        items, workers=workers, on_partial=on_partial, chunk_size=chunk_size
    )


def _map_task(
    rng: np.random.Generator, address: TaskAddress, payload: Any
) -> Any:
    """Generic per-item map adapter (mirrors parallel.MapFn calling
    convention: fn(rng, item_index, item))."""
    fn, index, item = payload
    return fn(rng, index, item)


def map_fused(
    fn: Callable,
    seed: int,
    items: Sequence[Any],
    workers: Optional[int] = None,
    campaign: str = "map",
    cell_ids: Optional[Sequence[int]] = None,
    on_partial: Optional[PartialFn] = None,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """Map ``fn`` over ``items`` through the fused queue.

    The flat counterpart of :func:`repro.sim.parallel.map_in_processes`:
    item ``i`` receives ``SeedSequence(seed).spawn(n)[i]``, so results
    are bit-identical to ``map_serial`` for any worker count.
    ``cell_ids`` labels each item's task address as a cell of run 0
    (the rollout consumer); without it items address as run indices.
    """
    items = list(items)
    if not items:
        raise ConfigurationError("no items to map")
    if cell_ids is not None and len(cell_ids) != len(items):
        raise ConfigurationError(
            f"{len(cell_ids)} cell ids for {len(items)} items"
        )
    work = []
    for index, item in enumerate(items):
        if cell_ids is None:
            address = TaskAddress(campaign, index)
        else:
            address = TaskAddress(campaign, 0, int(cell_ids[index]))
        work.append(
            WorkItem(
                address=address,
                fn=_map_task,
                payload=(fn, index, item),
                seed=seed,
                spawn_index=index,
            )
        )
    return execute_items(
        work, workers=workers, on_partial=on_partial, chunk_size=chunk_size
    )
