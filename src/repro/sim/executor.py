"""The campaign executor: plan -> per-device ledgers.

Turns a validated :class:`~repro.core.plan.MulticastPlan` into a
:class:`~repro.sim.metrics.CampaignResult` by walking each device's
timeline over a common observation horizon:

* idle periods — every paging occasion costs one PO-monitor interval
  (light sleep); the grid is the preferred cycle except, for DA-SC
  adapted devices, the temporarily shortened grid between adaptation
  and the multicast;
* paging receptions (normal, extended) — light sleep;
* random access, RRC signalling, connected waiting and data reception —
  connected mode;
* everything else — deep sleep.

The transmission start is the realistic one: the eNB begins the
multicast at the nominal frame *or* as soon as the last paged group
member is connected, whichever is later (devices paged at the very end
of the window still need their random access to finish). Waits are
therefore never negative.

The same accounting is reproduced event-by-event in
:mod:`repro.sim.replay`; an integration test asserts both agree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.eventlog import EventLogRecorder

from repro.core.plan import DeviceDirective, MulticastPlan, Transmission, WakeMethod
from repro.devices.device import NbIotDevice
from repro.devices.fleet import Fleet
from repro.drx.paging import pattern_for
from repro.drx.schedule import PoSchedule
from repro.energy.ledger import UptimeLedger
from repro.energy.profiles import DEFAULT_PROFILE, EnergyProfile
from repro.energy.states import PowerState
from repro.errors import SimulationError
from repro.rrc.procedures import ProcedureTimings
from repro.sim.metrics import CampaignResult, DeviceOutcome
from repro.timebase import frame_after_seconds, frames_to_seconds


class CampaignExecutor:
    """Executes plans with direct timeline arithmetic (the fast path).

    ``columnar=True`` (the default) runs the vectorised NumPy path of
    :mod:`repro.sim.columnar`: one array-of-ledgers instead of
    per-device Python objects, equivalent to the per-device reference
    path within float tolerance. ``columnar=False`` keeps the original
    per-device loop, retained as the equivalence oracle.
    """

    def __init__(
        self,
        timings: ProcedureTimings = ProcedureTimings(),
        energy_profile: EnergyProfile = DEFAULT_PROFILE,
        columnar: bool = True,
    ) -> None:
        self._timings = timings
        self._profile = energy_profile
        self._columnar = columnar

    @property
    def timings(self) -> ProcedureTimings:
        """The control-plane timing model in force."""
        return self._timings

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        fleet: Fleet,
        plan: MulticastPlan,
        horizon_frames: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        recorder: Optional["EventLogRecorder"] = None,
    ) -> CampaignResult:
        """Run ``plan`` against ``fleet`` over a common horizon.

        ``horizon_frames`` fixes the observation window; it defaults to
        just past the campaign's real end. Pass the horizon of another
        result to build a comparable baseline (Fig. 6 divides uptime
        sums computed over identical horizons).

        ``rng`` is only needed when the random access model injects
        contention. ``recorder`` (see :mod:`repro.sim.eventlog`)
        captures the campaign's semantic events on either path; the
        caller finalises it into an :class:`EventLog`.
        """
        if self._columnar:
            from repro.sim.columnar import execute_columnar

            return execute_columnar(
                fleet,
                plan,
                timings=self._timings,
                energy_profile=self._profile,
                horizon_frames=horizon_frames,
                rng=rng,
                recorder=recorder,
            )
        per_device = self._prepare_devices(fleet, plan, rng)
        actual_starts = self._transmission_starts(plan, per_device)
        outcomes, horizon = self._account(
            fleet, plan, per_device, actual_starts, horizon_frames, recorder
        )
        if recorder is not None:
            self._emit_transmissions(plan, actual_starts, recorder)
        return CampaignResult(
            plan=plan,
            horizon_frames=horizon,
            outcomes=tuple(outcomes),
            actual_start_s=tuple(actual_starts[t.index] for t in plan.transmissions),
            energy_profile=self._profile,
        )

    # ------------------------------------------------------------------
    # Phase 1: readiness and pre-transmission charges
    # ------------------------------------------------------------------
    def _prepare_devices(
        self,
        fleet: Fleet,
        plan: MulticastPlan,
        rng: Optional[np.random.Generator],
    ) -> Dict[int, "_DeviceTimeline"]:
        timelines: Dict[int, _DeviceTimeline] = {}
        airtime = self._timings.airtime
        for directive in plan.directives:
            device = fleet[directive.device_index]
            timeline = _DeviceTimeline(directive=directive)
            if directive.method is WakeMethod.DRX_ADAPTATION:
                adaptation_s = frames_to_seconds(directive.adaptation_page_frame)
                episode = self._timings.adaptation_episode_s(device.coverage, rng)
                timeline.adaptation_paging_s = airtime.paging_message_s
                timeline.adaptation_episode_s = episode
                timeline.adaptation_busy_end_f = frame_after_seconds(
                    adaptation_s + airtime.paging_message_s + episode
                )
            if directive.method is WakeMethod.EXTENDED_PAGE_TIMER:
                # Extended page heard at a normal PO; connection happens
                # later, at T322 expiry, with no page preceding it.
                timeline.page_rx_s = airtime.extended_paging_s
                wake_s = frames_to_seconds(directive.connect_frame)
                ra = self._timings.random_access.perform(device.coverage, rng)
                timeline.ra_s = ra.duration_s
                timeline.ra_attempts = ra.attempts
                timeline.ready_s = wake_s + ra.duration_s + airtime.rrc_setup_s
            else:
                timeline.page_rx_s = airtime.paging_message_s
                page_s = frames_to_seconds(directive.page_frame)
                ra = self._timings.random_access.perform(device.coverage, rng)
                timeline.ra_s = ra.duration_s
                timeline.ra_attempts = ra.attempts
                timeline.ready_s = (
                    page_s
                    + airtime.paging_message_s
                    + ra.duration_s
                    + airtime.rrc_setup_s
                )
            timelines[directive.device_index] = timeline
        return timelines

    # ------------------------------------------------------------------
    # Phase 2: realised transmission starts
    # ------------------------------------------------------------------
    @staticmethod
    def _transmission_starts(
        plan: MulticastPlan, per_device: Dict[int, "_DeviceTimeline"]
    ) -> Dict[int, float]:
        starts: Dict[int, float] = {}
        for transmission in plan.transmissions:
            nominal = frames_to_seconds(transmission.frame)
            latest_ready = max(
                per_device[i].ready_s for i in transmission.device_indices
            )
            starts[transmission.index] = max(nominal, latest_ready)
        return starts

    # ------------------------------------------------------------------
    # Phase 3: per-device accounting over the horizon
    # ------------------------------------------------------------------
    def _account(
        self,
        fleet: Fleet,
        plan: MulticastPlan,
        per_device: Dict[int, "_DeviceTimeline"],
        starts: Dict[int, float],
        horizon_frames: Optional[int],
        recorder: Optional["EventLogRecorder"] = None,
    ) -> Tuple[List[DeviceOutcome], int]:
        airtime = self._timings.airtime
        transmissions = {t.index: t for t in plan.transmissions}

        # First pass: campaign end (to resolve the default horizon).
        end_s = 0.0
        for directive in plan.directives:
            timeline = per_device[directive.device_index]
            transmission = transmissions[directive.transmission_index]
            rx_s = plan.payload_bytes * 8.0 / transmission.rate_bps
            tail = self._tail_s(directive)
            timeline.start_s = starts[transmission.index]
            timeline.rx_s = rx_s
            timeline.tail_s = tail
            timeline.main_end_s = timeline.start_s + rx_s + tail
            end_s = max(end_s, timeline.main_end_s)
        horizon = self._resolve_horizon(horizon_frames, end_s)
        horizon_s = frames_to_seconds(horizon)
        if recorder is not None:
            from repro.sim.eventlog import profile_meta

            recorder.set_meta(
                emitter="row",
                energy_profile=profile_meta(self._profile),
                mechanism=plan.mechanism,
                n_devices=len(plan.directives),
                n_transmissions=len(plan.transmissions),
                payload_bytes=plan.payload_bytes,
                announce_frame=plan.announce_frame,
                horizon_frames=int(horizon),
                po_monitor_s=airtime.po_monitor_s,
                paging_message_s=airtime.paging_message_s,
                extended_paging_s=airtime.extended_paging_s,
                rrc_setup_s=airtime.rrc_setup_s,
                release_s=self._timings.release_s(),
                restore_s=self._timings.restore_s(),
            )

        outcomes: List[DeviceOutcome] = []
        for directive in plan.directives:
            device = fleet[directive.device_index]
            timeline = per_device[directive.device_index]
            if timeline.main_end_s > horizon_s + 1e-9:
                raise SimulationError(
                    f"horizon {horizon} frames ends before device "
                    f"{directive.device_index} finishes at {timeline.main_end_s:.2f}s"
                )
            ledger = UptimeLedger()
            po_monitor = self._idle_po_count(
                device, directive, timeline, plan.announce_frame, horizon
            )
            ledger.add(PowerState.PO_MONITOR, po_monitor * airtime.po_monitor_s)
            ledger.add(PowerState.PAGING_RX, timeline.page_rx_s)
            ra2 = 0.0
            if directive.method is WakeMethod.DRX_ADAPTATION:
                ledger.add(PowerState.PAGING_RX, timeline.adaptation_paging_s)
                ra2 = self._timings.random_access.base_duration_s(device.coverage)
                ledger.add(PowerState.RANDOM_ACCESS, ra2)
                ledger.add(
                    PowerState.RRC_SIGNALLING, timeline.adaptation_episode_s - ra2
                )
            ledger.add(PowerState.RANDOM_ACCESS, timeline.ra_s)
            ledger.add(PowerState.RRC_SIGNALLING, airtime.rrc_setup_s)
            wait_s = timeline.start_s - timeline.ready_s
            if wait_s < -1e-9:
                raise SimulationError(
                    f"negative wait for device {directive.device_index}"
                )  # pragma: no cover - guarded by start computation
            ledger.add(PowerState.CONNECTED_WAIT, max(0.0, wait_s))
            ledger.add(PowerState.CONNECTED_RX, timeline.rx_s)
            ledger.add(PowerState.RRC_SIGNALLING, timeline.tail_s)
            totals = ledger.totals
            ledger.add(
                PowerState.DEEP_SLEEP,
                max(0.0, horizon_s - totals.light_sleep_s - totals.connected_s),
            )
            outcomes.append(
                DeviceOutcome(
                    device_index=directive.device_index,
                    transmission_index=directive.transmission_index,
                    ledger=ledger,
                    ready_s=timeline.ready_s,
                    wait_s=max(0.0, wait_s),
                    updated_s=timeline.start_s + timeline.rx_s,
                )
            )
            if recorder is not None:
                self._emit_device(
                    recorder, plan, directive, timeline, po_monitor, ra2
                )
        outcomes.sort(key=lambda outcome: outcome.device_index)
        return outcomes, horizon

    def _emit_device(
        self,
        recorder: "EventLogRecorder",
        plan: MulticastPlan,
        directive: DeviceDirective,
        timeline: "_DeviceTimeline",
        po_monitor: int,
        adaptation_ra_s: float,
    ) -> None:
        """Record one device's events with the exact accounted floats."""
        from repro.sim.events import EventKind

        dev = directive.device_index
        tx = directive.transmission_index
        recorder.emit(
            EventKind.PO_MONITOR, plan.announce_frame, dev, tx, a=float(po_monitor)
        )
        if directive.method is WakeMethod.DRX_ADAPTATION:
            recorder.emit(
                EventKind.ADAPTATION_PAGE,
                directive.adaptation_page_frame,
                dev,
                tx,
                a=timeline.adaptation_episode_s,
                b=adaptation_ra_s,
            )
        if directive.method is WakeMethod.EXTENDED_PAGE_TIMER:
            recorder.emit(
                EventKind.EXTENDED_PAGE,
                directive.page_frame,
                dev,
                tx,
                a=timeline.page_rx_s,
            )
            recorder.emit(EventKind.T322_EXPIRY, directive.connect_frame, dev, tx)
        else:
            recorder.emit(
                EventKind.PAGE, directive.page_frame, dev, tx, a=timeline.page_rx_s
            )
        recorder.emit(
            EventKind.CONNECTION_READY,
            frame_after_seconds(timeline.ready_s),
            dev,
            tx,
            a=timeline.ra_s,
            b=timeline.ready_s,
        )
        if self._timings.random_access.collision_probability > 0.0:
            recorder.emit(
                EventKind.RA_ATTEMPT,
                frame_after_seconds(timeline.ready_s),
                dev,
                tx,
                a=float(timeline.ra_attempts),
                b=timeline.ra_s,
            )
        recorder.emit(
            EventKind.DEVICE_DONE,
            frame_after_seconds(timeline.main_end_s),
            dev,
            tx,
            a=max(0.0, timeline.start_s - timeline.ready_s),
            b=timeline.rx_s,
        )

    @staticmethod
    def _emit_transmissions(
        plan: MulticastPlan,
        starts: Dict[int, float],
        recorder: "EventLogRecorder",
    ) -> None:
        """Record realised transmission bounds (row path)."""
        from repro.sim.events import EventKind

        for transmission in plan.transmissions:
            start_s = starts[transmission.index]
            end_s = start_s + plan.payload_bytes * 8.0 / transmission.rate_bps
            recorder.emit(
                EventKind.TX_START,
                transmission.frame,
                group=transmission.index,
                a=start_s,
                b=transmission.rate_bps,
            )
            recorder.emit(
                EventKind.TX_END,
                frame_after_seconds(end_s),
                group=transmission.index,
                a=end_s,
            )

    def _tail_s(self, directive: DeviceDirective) -> float:
        """Post-payload signalling: restore (DA-SC only) + release."""
        tail = self._timings.release_s()
        if directive.method is WakeMethod.DRX_ADAPTATION:
            tail += self._timings.restore_s()
        return tail

    @staticmethod
    def _resolve_horizon(horizon_frames: Optional[int], end_s: float) -> int:
        needed = frame_after_seconds(end_s) + 1
        if horizon_frames is None:
            return needed
        if horizon_frames < needed:
            raise SimulationError(
                f"horizon {horizon_frames} frames ends before the campaign "
                f"does ({needed} frames needed)"
            )
        return horizon_frames

    def _idle_po_count(
        self,
        device: NbIotDevice,
        directive: DeviceDirective,
        timeline: "_DeviceTimeline",
        announce_frame: int,
        horizon: int,
    ) -> int:
        """Paging occasions monitored while idle (excluding page events)."""
        preferred = device.schedule
        main_busy_start = (
            directive.connect_frame
            if directive.method is WakeMethod.EXTENDED_PAGE_TIMER
            else directive.page_frame
        )
        main_busy_end = frame_after_seconds(timeline.main_end_s)

        if directive.method is WakeMethod.DRX_ADAPTATION:
            adapted = pattern_for(
                device.drx.ue_id, directive.adapted_cycle, device.drx.nb
            ).schedule
            a = directive.adaptation_page_frame
            count = preferred.count_in(announce_frame, a)
            count += adapted.count_in(
                timeline.adaptation_busy_end_f + 1, main_busy_start
            )
            count += preferred.count_in(main_busy_end + 1, horizon)
            return count

        count = preferred.count_in(announce_frame, horizon)
        count -= preferred.count_in(main_busy_start, main_busy_end + 1)
        if directive.method is WakeMethod.EXTENDED_PAGE_TIMER:
            # The PO carrying the extended page is charged as paging
            # reception, not monitoring (it lies outside the busy span).
            count -= 1
        return count


class _DeviceTimeline:
    """Mutable scratch space for one device during execution."""

    __slots__ = (
        "directive",
        "page_rx_s",
        "ra_s",
        "ra_attempts",
        "ready_s",
        "adaptation_paging_s",
        "adaptation_episode_s",
        "adaptation_busy_end_f",
        "start_s",
        "rx_s",
        "tail_s",
        "main_end_s",
    )

    def __init__(self, directive: DeviceDirective) -> None:
        self.directive = directive
        self.page_rx_s = 0.0
        self.ra_s = 0.0
        self.ra_attempts = 1
        self.ready_s = 0.0
        self.adaptation_paging_s = 0.0
        self.adaptation_episode_s = 0.0
        self.adaptation_busy_end_f = 0
        self.start_s = 0.0
        self.rx_s = 0.0
        self.tail_s = 0.0
        self.main_end_s = 0.0
