"""Phase-timing observability for the simulation cold path.

A run decomposes into a fixed set of phases — ``generate`` (fleet
sampling), ``plan`` (grouping), ``execute`` (campaign execution),
``reduce`` (repair rounds + metric fold), plus the fused backend's
``publish`` (sealing the fleet into shared memory) and ``attach``
(mapping the segment in a worker). :class:`PhaseTimer` accumulates
wall-clock seconds per phase; the timings ride as observability
side-channels only — recorded run metadata
(:class:`~repro.sim.eventlog.RunLog` ``meta``), streamed fused cell
summaries, bench artifacts — never inside the metric dicts, whose
floats-only keys are part of the cross-backend bit-identity contract.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterable, Iterator, Mapping

#: The canonical phase vocabulary, in pipeline order.
PHASE_NAMES = ("generate", "plan", "execute", "reduce", "publish", "attach")


class PhaseTimer:
    """Accumulates wall-clock seconds into named phases.

    Phases may be entered repeatedly (e.g. ``execute`` once per cell of
    a run); durations accumulate. Timing never touches any random
    stream, so instrumented and uninstrumented runs are bit-identical.
    """

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one ``with`` block into phase ``name``."""
        start = perf_counter()
        try:
            yield
        finally:
            self.add(name, perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into phase ``name`` directly."""
        self._seconds[name] = self._seconds.get(name, 0.0) + float(seconds)

    def timings(self) -> Dict[str, float]:
        """The accumulated ``{phase}_s`` durations (insertion order)."""
        return {f"{name}_s": value for name, value in self._seconds.items()}


def merge_timings(
    parts: Iterable[Mapping[str, float]],
) -> Dict[str, float]:
    """Key-wise sum of several ``{phase}_s`` timing dicts.

    The aggregation the benches use to fold per-cell fused timings
    (streamed one :class:`~repro.sim.dispatch.PartialResult` at a time)
    into per-run or per-campaign totals.
    """
    merged: Dict[str, float] = {}
    for part in parts:
        for key, value in part.items():
            merged[key] = merged.get(key, 0.0) + float(value)
    return merged
