"""Event-driven plan replay.

Re-executes a :class:`~repro.core.plan.MulticastPlan` on the
discrete-event engine, charging exactly the same durations as the
arithmetic :class:`~repro.sim.executor.CampaignExecutor`. The
integration tests assert the two produce identical ledgers across all
three mechanisms and multiple grouping policies
(``tests/integration/test_executor_replay_equivalence.py``); examples
use this executor when an inspectable event trace is worth the slower
run time. Like the executor, the replay can emit a columnar event log
(pass ``recorder=``, see :mod:`repro.sim.eventlog`).

Devices are lazy: each keeps at most one pending PO_MONITOR event, so
the queue stays small even over multi-hour horizons.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.eventlog import EventLogRecorder

from repro.core.plan import DeviceDirective, MulticastPlan, WakeMethod
from repro.devices.fleet import Fleet
from repro.drx.paging import pattern_for
from repro.drx.schedule import PoSchedule
from repro.energy.ledger import UptimeLedger
from repro.energy.profiles import DEFAULT_PROFILE, EnergyProfile
from repro.energy.states import PowerState
from repro.errors import SimulationError
from repro.rrc.procedures import ProcedureTimings
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventKind
from repro.sim.metrics import CampaignResult, DeviceOutcome
from repro.timebase import frame_after_seconds, frames_to_seconds

#: TX_START must sort after CONNECTION_READY at the same instant.
_PRIORITY_READY = 0
_PRIORITY_TX = 1


class EventDrivenCampaign:
    """Replays one plan on the event engine."""

    def __init__(
        self,
        fleet: Fleet,
        plan: MulticastPlan,
        timings: ProcedureTimings = ProcedureTimings(),
        energy_profile: EnergyProfile = DEFAULT_PROFILE,
        trace: bool = False,
        recorder: Optional["EventLogRecorder"] = None,
    ) -> None:
        self._fleet = fleet
        self._plan = plan
        self._timings = timings
        self._profile = energy_profile
        self._sim = Simulator(trace=trace)
        self._devices: Dict[int, _DeviceActor] = {}
        self._gates: Dict[int, _TransmissionGate] = {}
        self._recorder = recorder

    @property
    def simulator(self) -> Simulator:
        """The underlying engine (exposes the trace when enabled)."""
        return self._sim

    def run(
        self,
        horizon_frames: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> CampaignResult:
        """Execute the plan and return the campaign result."""
        transmissions = {t.index: t for t in self._plan.transmissions}
        for transmission in self._plan.transmissions:
            self._gates[transmission.index] = _TransmissionGate(
                self, transmission.index
            )
        for directive in self._plan.directives:
            actor = _DeviceActor(self, directive, rng)
            self._devices[directive.device_index] = actor
            self._gates[directive.transmission_index].members.append(actor)
        for actor in self._devices.values():
            actor.start()

        # Phase 1: run until every device finished its campaign. Idle PO
        # chains self-perpetuate, so each round is bounded; the bound
        # grows only while some device is still mid-campaign (realised
        # transmission starts can slip past the nominal frame by the
        # stragglers' connect time).
        bound_s = frames_to_seconds(self._plan.campaign_end_frame + 1)
        for _round in range(1000):
            self._sim.run(until_s=bound_s)
            if all(a.main_end_s > 0.0 for a in self._devices.values()):
                break
            bound_s += 60.0
        else:  # pragma: no cover - defensive
            raise SimulationError("campaign did not complete within bounds")
        end_s = max(actor.main_end_s for actor in self._devices.values())
        horizon = self._resolve_horizon(horizon_frames, end_s)
        horizon_s = frames_to_seconds(horizon)
        if self._recorder is not None:
            from repro.sim.eventlog import profile_meta

            airtime = self._timings.airtime
            self._recorder.set_meta(
                emitter="replay",
                energy_profile=profile_meta(self._profile),
                mechanism=self._plan.mechanism,
                n_devices=len(self._plan.directives),
                n_transmissions=len(self._plan.transmissions),
                payload_bytes=self._plan.payload_bytes,
                announce_frame=self._plan.announce_frame,
                horizon_frames=int(horizon),
                po_monitor_s=airtime.po_monitor_s,
                paging_message_s=airtime.paging_message_s,
                extended_paging_s=airtime.extended_paging_s,
                rrc_setup_s=airtime.rrc_setup_s,
                release_s=self._timings.release_s(),
                restore_s=self._timings.restore_s(),
            )

        # Phase 2: run the idle chains out to the horizon, stopping half
        # a frame short so the PO at the horizon boundary itself never
        # fires. PO charges are recorded as frames and filtered by the
        # horizon at finalisation, so a phase-1 bound that overshot the
        # horizon cannot overcharge.
        self._sim.run(until_s=horizon_s - 0.5 * frames_to_seconds(1))

        outcomes = []
        for device_index in sorted(self._devices):
            actor = self._devices[device_index]
            actor.finalise(horizon, horizon_s)
            outcomes.append(actor.outcome())
        return CampaignResult(
            plan=self._plan,
            horizon_frames=horizon,
            outcomes=tuple(outcomes),
            actual_start_s=tuple(
                self._gates[t.index].start_s for t in self._plan.transmissions
            ),
            energy_profile=self._profile,
        )

    @staticmethod
    def _resolve_horizon(horizon_frames: Optional[int], end_s: float) -> int:
        needed = frame_after_seconds(end_s) + 1
        if horizon_frames is None:
            return needed
        if horizon_frames < needed:
            raise SimulationError(
                f"horizon {horizon_frames} frames ends before the campaign "
                f"does ({needed} frames needed)"
            )
        return horizon_frames

    # Internal accessors used by the actors/gates -----------------------
    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def plan(self) -> MulticastPlan:
        return self._plan

    @property
    def fleet(self) -> Fleet:
        return self._fleet

    @property
    def timings(self) -> ProcedureTimings:
        return self._timings

    @property
    def recorder(self) -> Optional["EventLogRecorder"]:
        return self._recorder


class _TransmissionGate:
    """Starts a transmission once every group member is connected."""

    def __init__(self, campaign: EventDrivenCampaign, index: int) -> None:
        self._campaign = campaign
        self._index = index
        self.members: List[_DeviceActor] = []
        self._ready = 0
        self.start_s = 0.0

    def member_ready(self) -> None:
        self._ready += 1
        if self._ready < len(self.members):
            return
        transmission = self._campaign.plan.transmissions[self._index]
        nominal_s = frames_to_seconds(transmission.frame)
        start_s = max(nominal_s, self._campaign.sim.now)
        self.start_s = start_s
        self._campaign.sim.schedule(
            Event(start_s, EventKind.TX_START, payload={"tx": self._index}),
            self._on_start,
            priority=_PRIORITY_TX,
        )

    def _on_start(self, event: Event) -> None:
        transmission = self._campaign.plan.transmissions[self._index]
        rx_s = self._campaign.plan.payload_bytes * 8.0 / transmission.rate_bps
        recorder = self._campaign.recorder
        if recorder is not None:
            recorder.emit(
                EventKind.TX_START,
                transmission.frame,
                group=self._index,
                a=self.start_s,
                b=transmission.rate_bps,
            )
        for member in self.members:
            member.transmission_started(self.start_s)
        self._campaign.sim.schedule(
            Event(self.start_s + rx_s, EventKind.TX_END, payload={"tx": self._index}),
            self._on_end,
            priority=_PRIORITY_TX,
        )

    def _on_end(self, event: Event) -> None:
        recorder = self._campaign.recorder
        if recorder is not None:
            recorder.emit(
                EventKind.TX_END,
                frame_after_seconds(event.time_s),
                group=self._index,
                a=event.time_s,
            )
        for member in self.members:
            member.transmission_ended(event.time_s)


class _DeviceActor:
    """One device's state machine during the replay."""

    def __init__(
        self,
        campaign: EventDrivenCampaign,
        directive: DeviceDirective,
        rng: Optional[np.random.Generator],
    ) -> None:
        self._campaign = campaign
        self._directive = directive
        self._rng = rng
        self._device = campaign.fleet[directive.device_index]
        self._preferred = self._device.schedule
        self._grid: PoSchedule = self._preferred
        self.ledger = UptimeLedger()
        self.ready_s = 0.0
        self.wait_s = 0.0
        self.updated_s = 0.0
        self.main_end_s = 0.0
        self._monitor_scheduled = False
        self._suspended = False
        self._monitored_po_frames: List[int] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first PO at or after the announce frame."""
        first = self._grid.first_at_or_after(self._campaign.plan.announce_frame)
        self._schedule_monitor(first)

    def _schedule_monitor(self, frame: int) -> None:
        self._monitor_scheduled = True
        self._campaign.sim.schedule(
            Event(
                frames_to_seconds(frame),
                EventKind.PO_MONITOR,
                device_index=self._directive.device_index,
                payload={"frame": frame},
            ),
            self._on_po,
            priority=_PRIORITY_READY,
        )

    # ------------------------------------------------------------------
    # PO handling
    # ------------------------------------------------------------------
    def _on_po(self, event: Event) -> None:
        self._monitor_scheduled = False
        if self._suspended:
            # A pending PO fired after the device connected (e.g. a
            # preferred PO landing between T322 expiry and the release):
            # the radio is in connected mode, nothing is monitored.
            return
        frame = event.payload["frame"]
        directive = self._directive
        airtime = self._campaign.timings.airtime

        if (
            directive.method is WakeMethod.DRX_ADAPTATION
            and frame == directive.adaptation_page_frame
        ):
            self._run_adaptation_episode(frame)
            return
        if frame == directive.page_frame:
            if directive.method is WakeMethod.EXTENDED_PAGE_TIMER:
                self.ledger.add(PowerState.PAGING_RX, airtime.extended_paging_s)
                self._record(
                    EventKind.EXTENDED_PAGE, frame, a=airtime.extended_paging_s
                )
                # Priority -1: if the wake time collides with one of the
                # device's own POs, the timer wins and the PO is skipped
                # (the device is connecting, not monitoring).
                self._campaign.sim.schedule(
                    Event(
                        frames_to_seconds(directive.connect_frame),
                        EventKind.T322_EXPIRY,
                        device_index=directive.device_index,
                    ),
                    self._on_t322,
                    priority=-1,
                )
                # Normal DRX continues while T322 runs.
                self._schedule_monitor(
                    self._grid.first_at_or_after(frame + 1)
                )
                return
            # Final page: receive it and connect.
            self.ledger.add(PowerState.PAGING_RX, airtime.paging_message_s)
            self._record(EventKind.PAGE, frame, a=airtime.paging_message_s)
            self._suspended = True
            self._connect(frames_to_seconds(frame) + airtime.paging_message_s)
            return

        # An empty PO: light-sleep monitoring, carry on. Recorded as a
        # frame and charged at finalisation (horizon-filtered).
        self._monitored_po_frames.append(frame)
        self._schedule_monitor(self._grid.first_at_or_after(frame + 1))

    def _on_t322(self, event: Event) -> None:
        """T322 fired: stop idle monitoring and connect."""
        self._record(EventKind.T322_EXPIRY, self._directive.connect_frame)
        self._suspended = True
        self._connect(event.time_s)

    def _record(
        self, kind: EventKind, frame: int, a: float = 0.0, b: float = 0.0
    ) -> None:
        recorder = self._campaign.recorder
        if recorder is not None:
            recorder.emit(
                kind,
                frame,
                self._directive.device_index,
                self._directive.transmission_index,
                a=a,
                b=b,
            )

    # ------------------------------------------------------------------
    # Connection / adaptation
    # ------------------------------------------------------------------
    def _run_adaptation_episode(self, frame: int) -> None:
        """DA-SC: page + RA + setup + reconfiguration + release."""
        timings = self._campaign.timings
        airtime = timings.airtime
        self.ledger.add(PowerState.PAGING_RX, airtime.paging_message_s)
        episode = timings.adaptation_episode_s(self._device.coverage, self._rng)
        ra = timings.random_access.base_duration_s(self._device.coverage)
        self.ledger.add(PowerState.RANDOM_ACCESS, ra)
        self.ledger.add(PowerState.RRC_SIGNALLING, episode - ra)
        self._record(EventKind.ADAPTATION_PAGE, frame, a=episode, b=ra)
        # Switch to the adapted grid; resume monitoring after the episode.
        assert self._directive.adapted_cycle is not None
        self._grid = pattern_for(
            self._device.drx.ue_id,
            self._directive.adapted_cycle,
            self._device.drx.nb,
        ).schedule
        busy_end = frame_after_seconds(
            frames_to_seconds(frame) + airtime.paging_message_s + episode
        )
        self._schedule_monitor(self._grid.first_at_or_after(busy_end + 1))

    def _connect(self, at_s: float) -> None:
        """Random access + RRC setup, then notify the gate."""
        timings = self._campaign.timings
        ra = timings.random_access.perform(self._device.coverage, self._rng)
        self.ledger.add(PowerState.RANDOM_ACCESS, ra.duration_s)
        self.ledger.add(PowerState.RRC_SIGNALLING, timings.airtime.rrc_setup_s)
        self.ready_s = at_s + ra.duration_s + timings.airtime.rrc_setup_s
        self._record(
            EventKind.CONNECTION_READY,
            frame_after_seconds(self.ready_s),
            a=ra.duration_s,
            b=self.ready_s,
        )
        if timings.random_access.collision_probability > 0.0:
            self._record(
                EventKind.RA_ATTEMPT,
                frame_after_seconds(self.ready_s),
                a=float(ra.attempts),
                b=ra.duration_s,
            )
        self._campaign.sim.schedule(
            Event(
                self.ready_s,
                EventKind.CONNECTION_READY,
                device_index=self._directive.device_index,
            ),
            self._on_ready,
            priority=_PRIORITY_READY,
        )

    def _on_ready(self, event: Event) -> None:
        self._campaign._gates[self._directive.transmission_index].member_ready()

    # ------------------------------------------------------------------
    # Transmission callbacks
    # ------------------------------------------------------------------
    def transmission_started(self, start_s: float) -> None:
        self.wait_s = max(0.0, start_s - self.ready_s)
        self.ledger.add(PowerState.CONNECTED_WAIT, self.wait_s)

    def transmission_ended(self, end_s: float) -> None:
        timings = self._campaign.timings
        rx_s = end_s - (self.ready_s + self.wait_s)
        self.ledger.add(PowerState.CONNECTED_RX, rx_s)
        self.updated_s = end_s
        tail = timings.release_s()
        if self._directive.method is WakeMethod.DRX_ADAPTATION:
            tail += timings.restore_s()
            self._grid = self._preferred  # cycle restored
        self.ledger.add(PowerState.RRC_SIGNALLING, tail)
        self.main_end_s = end_s + tail
        self._record(
            EventKind.DEVICE_DONE,
            frame_after_seconds(self.main_end_s),
            a=self.wait_s,
            b=rx_s,
        )
        self._suspended = False
        self._schedule_monitor(
            self._grid.first_at_or_after(frame_after_seconds(self.main_end_s) + 1)
        )

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def finalise(self, horizon: int, horizon_s: float) -> None:
        airtime = self._campaign.timings.airtime
        monitored = sum(1 for f in self._monitored_po_frames if f < horizon)
        self.ledger.add(PowerState.PO_MONITOR, monitored * airtime.po_monitor_s)
        self._record(
            EventKind.PO_MONITOR,
            self._campaign.plan.announce_frame,
            a=float(monitored),
        )
        totals = self.ledger.totals
        self.ledger.add(
            PowerState.DEEP_SLEEP,
            max(0.0, horizon_s - totals.light_sleep_s - totals.connected_s),
        )

    def outcome(self) -> DeviceOutcome:
        return DeviceOutcome(
            device_index=self._directive.device_index,
            transmission_index=self._directive.transmission_index,
            ledger=self.ledger,
            ready_s=self.ready_s,
            wait_s=self.wait_s,
            updated_s=self.updated_s,
        )
