"""Typed events for the discrete-event engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Optional


class EventKind(Enum):
    """Kinds of events the campaign replay schedules."""

    PO_MONITOR = "po_monitor"
    """A device wakes to check its paging occasion."""

    PAGE = "page"
    """A paging message addressed to a device arrives at its PO."""

    EXTENDED_PAGE = "extended_page"
    """A DR-SI ``mltc-transmission`` notification arrives at a PO."""

    ADAPTATION_PAGE = "adaptation_page"
    """DA-SC: the page starting the cycle-reconfiguration episode."""

    T322_EXPIRY = "t322_expiry"
    """DR-SI: the wake-up timer fires; the device starts random access."""

    CONNECTION_READY = "connection_ready"
    """Random access + RRC setup finished; device awaits the data."""

    RA_ATTEMPT = "ra_attempt"
    """Log-only: a device's main random-access procedure, with its
    preamble attempt count (collisions = attempts - 1). Emitted only
    when the RA model injects contention."""

    TX_START = "tx_start"
    """A multicast (or unicast) transmission begins."""

    TX_END = "tx_end"
    """The transmission's payload is fully delivered."""

    DEVICE_DONE = "device_done"
    """Log-only: a device finished its campaign (wait/rx settled)."""

    REPAIR_ROUND = "repair_round"
    """Log-only: one application-layer repair round completed."""

    SEGMENT_LOSS = "segment_loss"
    """Log-only: the (device, segment) pairs still missing after one
    repair round — the loss that drives the next round."""

    CAMPAIGN_SUBMIT = "campaign_submit"
    """Service: a campaign was submitted and planned."""

    CAMPAIGN_REVISE = "campaign_revise"
    """Service: an in-flight campaign's plan was revised (join/leave)."""

    CAMPAIGN_ADMIT = "campaign_admit"
    """Service: the capacity arbiter admitted a transmission window."""

    CAMPAIGN_DEFER = "campaign_defer"
    """Service: the arbiter deferred a window past a capacity conflict."""

    DEVICE_JOIN = "device_join"
    """Service: a device joined an in-flight campaign."""

    DEVICE_LEAVE = "device_leave"
    """Service: a device left an in-flight campaign."""

    CAMPAIGN_COMPLETE = "campaign_complete"
    """Sim-internal: a campaign's last window passed (never logged)."""

    SERVICE_TICK = "service_tick"
    """Sim-internal: a sentinel the service awaits to advance the clock
    to a scripted frame (never logged)."""


@dataclass(frozen=True)
class Event:
    """One scheduled event.

    Attributes:
        time_s: simulated time in seconds.
        kind: event type.
        device_index: the device concerned (None for fleet-wide events).
        payload: free-form extra data recorded in the trace.
    """

    time_s: float
    kind: EventKind
    device_index: Optional[int] = None
    payload: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        who = "" if self.device_index is None else f" dev={self.device_index}"
        return f"[{self.time_s:12.3f}s] {self.kind.value}{who}"
