"""Monte-Carlo harness.

The paper averages every metric over 100 runs (Sec. IV-A). The harness
spawns one independent child generator per run from a root seed, maps a
caller-supplied run function over them, and aggregates each returned
metric into a :class:`RunStatistics` (mean, standard deviation, 95 %
confidence half-width).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.rng import spawn_generators

#: A run function: (rng, run_index) -> {metric name: value}.
RunFn = Callable[[np.random.Generator, int], Mapping[str, float]]


@dataclass(frozen=True)
class RunStatistics:
    """Aggregate of one metric across runs."""

    values: np.ndarray

    @property
    def n(self) -> int:
        """Number of runs."""
        return int(self.values.size)

    @property
    def mean(self) -> float:
        """Sample mean."""
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0 for a single run)."""
        if self.values.size < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.values.size < 2:
            return 0.0
        return self.std / math.sqrt(self.values.size)

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the normal-approximation 95 % CI."""
        return 1.96 * self.sem

    @property
    def min(self) -> float:
        """Smallest observed value."""
        return float(np.min(self.values))

    @property
    def max(self) -> float:
        """Largest observed value."""
        return float(np.max(self.values))

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci95_halfwidth:.2g} (n={self.n})"


class MonteCarlo:
    """Runs a seeded experiment ``n_runs`` times and aggregates metrics."""

    def __init__(self, n_runs: int = 100, seed: int = 2018) -> None:
        """``seed`` defaults to the paper's publication year, because a
        default seed has to be something."""
        if n_runs < 1:
            raise ConfigurationError(f"n_runs must be >= 1, got {n_runs}")
        self._n_runs = n_runs
        self._seed = seed

    @property
    def n_runs(self) -> int:
        """Number of repetitions."""
        return self._n_runs

    @property
    def seed(self) -> int:
        """Root seed."""
        return self._seed

    def run(self, fn: RunFn) -> Dict[str, RunStatistics]:
        """Execute ``fn`` once per run and aggregate every metric."""
        collected: Dict[str, List[float]] = {}
        expected_keys = None
        for run_index, rng in enumerate(spawn_generators(self._seed, self._n_runs)):
            metrics = fn(rng, run_index)
            if not metrics:
                raise ConfigurationError(
                    f"run {run_index} returned no metrics"
                )
            keys = frozenset(metrics)
            if expected_keys is None:
                expected_keys = keys
            elif keys != expected_keys:
                raise ConfigurationError(
                    f"run {run_index} returned keys {sorted(keys)}, "
                    f"expected {sorted(expected_keys)}"
                )
            for key, value in metrics.items():
                collected.setdefault(key, []).append(float(value))
        return {
            key: RunStatistics(values=np.asarray(vals, dtype=np.float64))
            for key, vals in collected.items()
        }
