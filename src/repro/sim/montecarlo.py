"""Monte-Carlo harness.

The paper averages every metric over 100 runs (Sec. IV-A). The harness
spawns one independent child generator per run from a root seed, maps a
caller-supplied run function over them, and aggregates each returned
metric into a :class:`RunStatistics` (mean, standard deviation, 95 %
confidence half-width).

Three execution backends produce bit-identical results:

* ``serial`` — runs in-process, one run after another (the default);
* ``process`` — shards the run list across a process pool
  (:mod:`repro.sim.parallel`); requires a picklable run function.
* ``fused`` — one run per work item through the fused (run x cell)
  work-queue scheduler (:mod:`repro.sim.dispatch`); requires a
  picklable run function. For generic run functions this is a flat
  map, but scenario campaigns route per-cell sub-tasks through the
  same queue (see :mod:`repro.scenarios.runner`).

An optional :class:`~repro.sim.parallel.ResultCache` short-circuits
repeated campaigns: when a ``cache_tag`` is supplied and the cache holds
matching metric arrays, no runs execute at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.sim.parallel import ResultCache, RunFn, run_in_processes
from repro.sim.rng import spawn_generators

#: Execution backends accepted by :class:`MonteCarlo`.
BACKENDS = ("serial", "process", "fused")


@dataclass(frozen=True)
class RunStatistics:
    """Aggregate of one metric across runs.

    An empty value array has no statistics: every reduction raises
    :class:`~repro.errors.SimulationError` instead of propagating
    NumPy's NaN-plus-RuntimeWarning behaviour (the same contract as
    ``CampaignResult.mean_wait_s`` on a result with no outcomes).
    """

    values: np.ndarray

    def _require_runs(self, what: str) -> None:
        if self.values.size == 0:
            raise SimulationError(
                f"{what} is undefined for statistics over zero runs"
            )

    @property
    def n(self) -> int:
        """Number of runs."""
        return int(self.values.size)

    @property
    def mean(self) -> float:
        """Sample mean."""
        self._require_runs("mean")
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0 for a single run)."""
        self._require_runs("std")
        if self.values.size < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        self._require_runs("sem")
        if self.values.size < 2:
            return 0.0
        return self.std / math.sqrt(self.values.size)

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the normal-approximation 95 % CI."""
        return 1.96 * self.sem

    @property
    def min(self) -> float:
        """Smallest observed value."""
        self._require_runs("min")
        return float(np.min(self.values))

    @property
    def max(self) -> float:
        """Largest observed value."""
        self._require_runs("max")
        return float(np.max(self.values))

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci95_halfwidth:.2g} (n={self.n})"


def _validate(
    run_index: int,
    metrics: Mapping[str, float],
    expected_keys: "Optional[frozenset[str]]",
) -> "frozenset[str]":
    """Check one run's metric dict; returns the expected key set."""
    if not metrics:
        raise ConfigurationError(f"run {run_index} returned no metrics")
    keys = frozenset(metrics)
    if expected_keys is not None and keys != expected_keys:
        raise ConfigurationError(
            f"run {run_index} returned keys {sorted(keys)}, "
            f"expected {sorted(expected_keys)}"
        )
    return keys


def _collect(per_run: Sequence[Mapping[str, float]]) -> Dict[str, List[float]]:
    """Validate per-run metric dicts and pivot them into columns."""
    collected: Dict[str, List[float]] = {}
    expected_keys = None
    for run_index, metrics in enumerate(per_run):
        expected_keys = _validate(run_index, metrics, expected_keys)
        for key, value in metrics.items():
            collected.setdefault(key, []).append(float(value))
    return collected


def collect_metric_columns(
    per_run: Sequence[Mapping[str, float]],
) -> Dict[str, List[float]]:
    """Validate and pivot per-run metric dicts into metric columns.

    The public face of the harness's aggregation step, for executors
    (like the fused scenario path) that produce the per-run dicts
    outside :meth:`MonteCarlo.run` but must aggregate — and cache —
    identically to it.
    """
    return _collect(per_run)


class MonteCarlo:
    """Runs a seeded experiment ``n_runs`` times and aggregates metrics.

    ``backend`` selects how the runs execute (``"serial"``,
    ``"process"`` or ``"fused"``); all spawn run ``i``'s generator
    identically, so the aggregated arrays are bit-for-bit equal across
    backends and worker counts.
    """

    def __init__(
        self,
        n_runs: int = 100,
        seed: int = 2018,
        backend: str = "serial",
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        """``seed`` defaults to the paper's publication year, because a
        default seed has to be something. ``chunk_size`` sets the fused
        backend's dispatch grain (None = auto; ignored otherwise) —
        results are bit-identical at every grain."""
        if n_runs < 1:
            raise ConfigurationError(f"n_runs must be >= 1, got {n_runs}")
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self._n_runs = n_runs
        self._seed = seed
        self._backend = backend
        self._workers = workers
        self._cache = cache
        self._chunk_size = chunk_size

    @property
    def n_runs(self) -> int:
        """Number of repetitions."""
        return self._n_runs

    @property
    def seed(self) -> int:
        """Root seed."""
        return self._seed

    @property
    def backend(self) -> str:
        """Execution backend name."""
        return self._backend

    @property
    def workers(self) -> Optional[int]:
        """Process-pool size (None = all cores; ignored when serial)."""
        return self._workers

    def run(
        self,
        fn: RunFn,
        cache_tag: Optional[str] = None,
        config_fingerprint: str = "",
    ) -> Dict[str, RunStatistics]:
        """Execute ``fn`` once per run and aggregate every metric.

        When a cache is attached *and* ``cache_tag`` identifies the
        campaign, a prior result with the same deterministic address
        (tag, fingerprint, seed, n_runs) is returned without executing
        anything — whichever backend wrote it — and a fresh result is
        persisted for next time.

        Every scenario parameter baked into ``fn`` must be covered by
        ``config_fingerprint`` (or the tag itself) — otherwise two
        different scenarios share a key and the second reads the
        first's stale results. Config-driven callers should pass
        ``config.fingerprint()``.
        """
        key = None
        if self._cache is not None and cache_tag is not None:
            key = ResultCache.key(
                cache_tag, config_fingerprint, self._seed, self._n_runs
            )
            cached = self._cache.load(key)
            if cached is not None:
                return {
                    name: RunStatistics(values=values)
                    for name, values in cached.items()
                }

        if self._backend == "process":
            per_run = run_in_processes(
                fn, self._seed, self._n_runs, workers=self._workers
            )
        elif self._backend == "fused":
            from repro.sim.dispatch import run_fused

            per_run = run_fused(
                fn,
                self._seed,
                self._n_runs,
                workers=self._workers,
                chunk_size=self._chunk_size,
            )
        else:
            # Validate as each run completes so a bad run fn fails the
            # campaign at run 0, not after the whole serial loop.
            per_run = []
            expected_keys = None
            for run_index, rng in enumerate(
                spawn_generators(self._seed, self._n_runs)
            ):
                metrics = fn(rng, run_index)
                expected_keys = _validate(run_index, metrics, expected_keys)
                per_run.append(metrics)
        collected = _collect(per_run)

        if key is not None:
            assert self._cache is not None
            self._cache.store(
                key,
                collected,
                meta={
                    "tag": cache_tag,
                    "fingerprint": config_fingerprint,
                    "seed": self._seed,
                    "n_runs": self._n_runs,
                },
            )
        return {
            name: RunStatistics(values=np.asarray(vals, dtype=np.float64))
            for name, vals in collected.items()
        }


def run_monte_carlo(
    fn: RunFn,
    n_runs: int = 100,
    seed: int = 2018,
    backend: str = "serial",
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    cache_tag: Optional[str] = None,
    config_fingerprint: str = "",
    chunk_size: Optional[int] = None,
) -> Dict[str, RunStatistics]:
    """One-call front for the harness: build a :class:`MonteCarlo` with
    the requested backend and run ``fn``."""
    harness = MonteCarlo(
        n_runs=n_runs,
        seed=seed,
        backend=backend,
        workers=workers,
        cache=cache,
        chunk_size=chunk_size,
    )
    return harness.run(
        fn, cache_tag=cache_tag, config_fingerprint=config_fingerprint
    )
