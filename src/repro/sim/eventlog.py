"""Columnar event log: record, STRICT replay, and structural diff.

Every campaign execution path — the vectorised columnar executor, the
per-device reference loop and the event-driven replay — can optionally
emit a compact, columnar event log: one structured-numpy row per
semantic event (paging, adaptation, readiness, transmission bounds,
device completion, repair rounds). The log is keyed by the scenario
fingerprint, the Monte-Carlo seed and the cell id, and a whole run
(all cells) serialises to a single ``.npz`` file.

Three consumers sit on top of the raw array:

* :func:`replay_strict` — the **STRICT** replayer: reconstructs a full
  :class:`~repro.sim.metrics.CampaignResult` (per-device ledgers,
  readiness/wait/update times, realised starts) from the log alone,
  with **no re-simulation**. The reconstruction applies the recorded
  durations in exactly the float-fold order of the live executors, so
  the rebuilt result is *bit-identical* to the live one — asserted by
  :func:`compare_results` returning no findings.
* :func:`diff_logs` / :func:`diff_runlogs` — the structural diff
  engine behind the ``runs diff`` CLI verb: first diverging event,
  per-kind count deltas and per-device event-count deltas, plus run
  metadata drift (seed, fingerprint, horizon).
* invariant checks in the property-test suite (time ordering,
  TX_START/TX_END pairing, no page before the announce frame).

The STRICT/REEXECUTE split follows the replay-engine pattern of
append-only agent logs: STRICT trusts only the evidence in the log;
re-execution (``repro.sim.replay``) remains available when fresh
stochastic draws are wanted.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.energy.ledger import STATE_ORDER, LedgerArray
from repro.energy.profiles import DEFAULT_PROFILE, EnergyProfile
from repro.energy.states import PowerState, StateGroup
from repro.errors import SimulationError
from repro.sim.events import EventKind
from repro.sim.metrics import CampaignResult, FleetOutcomes
from repro.timebase import frames_to_seconds

#: Bumped whenever the row dtype or the meta contract changes.
SCHEMA_VERSION = 1

#: One row per event. ``a``/``b`` are kind-specific payload fields:
#:
#: ==================  ===========================  =======================
#: kind                ``a``                        ``b``
#: ==================  ===========================  =======================
#: PO_MONITOR          idle POs monitored (count)   —
#: ADAPTATION_PAGE     episode duration (s)         base RA duration (s)
#: PAGE                page rx duration (s)         —
#: EXTENDED_PAGE       page rx duration (s)         —
#: T322_EXPIRY         —                            —
#: CONNECTION_READY    main RA duration (s)         ready time (s)
#: DEVICE_DONE         connected wait (s)           payload rx charge (s)
#: TX_START            realised start (s)           bearer rate (bit/s)
#: TX_END              delivery end (s)             —
#: RA_ATTEMPT          preamble attempts (count)    RA duration (s)
#: REPAIR_ROUND        segments sent this round     round number (1-based)
#: SEGMENT_LOSS        missing (dev, seg) pairs     round number (1-based)
#: CAMPAIGN_SUBMIT     member count                 transmission count
#: CAMPAIGN_REVISE     devices joined               devices left
#: CAMPAIGN_ADMIT      transmission index           shift (frames, 0=as asked)
#: CAMPAIGN_DEFER      transmission index           shift (frames)
#: DEVICE_JOIN         —                            —
#: DEVICE_LEAVE        —                            —
#: ==================  ===========================  =======================
#:
#: The six CAMPAIGN_*/DEVICE_* kinds are emitted by the live campaign
#: service (:mod:`repro.service`); ``group`` carries the campaign id.
EVENT_DTYPE = np.dtype(
    [
        ("frame", np.int64),
        ("device", np.int64),
        ("kind", np.uint8),
        ("cell", np.int32),
        ("group", np.int32),
        ("a", np.float64),
        ("b", np.float64),
    ]
)

#: Stable integer code of each :class:`EventKind` inside the log.
KIND_CODES: Dict[EventKind, int] = {
    EventKind.PO_MONITOR: 1,
    EventKind.ADAPTATION_PAGE: 2,
    EventKind.PAGE: 3,
    EventKind.EXTENDED_PAGE: 4,
    EventKind.T322_EXPIRY: 5,
    EventKind.CONNECTION_READY: 6,
    EventKind.TX_START: 7,
    EventKind.TX_END: 8,
    EventKind.DEVICE_DONE: 9,
    EventKind.REPAIR_ROUND: 10,
    EventKind.CAMPAIGN_SUBMIT: 11,
    EventKind.CAMPAIGN_REVISE: 12,
    EventKind.CAMPAIGN_ADMIT: 13,
    EventKind.CAMPAIGN_DEFER: 14,
    EventKind.DEVICE_JOIN: 15,
    EventKind.DEVICE_LEAVE: 16,
    EventKind.RA_ATTEMPT: 17,
    EventKind.SEGMENT_LOSS: 18,
}

CODE_TO_KIND: Dict[int, EventKind] = {code: kind for kind, code in KIND_CODES.items()}

#: Meta keys :func:`replay_strict` refuses to run without.
REQUIRED_META = (
    "schema",
    "emitter",
    "mechanism",
    "n_devices",
    "n_transmissions",
    "payload_bytes",
    "announce_frame",
    "horizon_frames",
    "po_monitor_s",
    "paging_message_s",
    "rrc_setup_s",
    "release_s",
    "restore_s",
)


def canonical_order(events: np.ndarray) -> np.ndarray:
    """Index array sorting events by (frame, device, kind, group).

    The key is a strict total order for every well-formed log (device
    events are unique per (device, kind), transmission events per
    (group, kind), repair rounds per frame), so two logs of the same
    run sort identically regardless of emission order.
    """
    return np.lexsort(
        (events["group"], events["kind"], events["device"], events["frame"])
    )


#: A buffered emission: (kind code, row count, frame, device, group, a,
#: b) where the value columns are scalars or arrays of ``size`` rows.
_Chunk = Tuple[int, int, Any, Any, Any, Any, Any]

_COLUMN_NAMES = ("frame", "device", "group", "a", "b")


def _materialise_chunks(chunks: Sequence[_Chunk], cell: int) -> np.ndarray:
    """Expand buffered chunks into one canonically sorted row array."""
    blocks = []
    for code, size, frame, device, group, a, b in chunks:
        block = np.zeros(size, dtype=EVENT_DTYPE)
        block["kind"] = code
        for name, column in zip(_COLUMN_NAMES, (frame, device, group, a, b)):
            block[name] = column
        blocks.append(block)
    if blocks:
        events = np.concatenate(blocks)
    else:
        events = np.zeros(0, dtype=EVENT_DTYPE)
    events["cell"] = cell
    return events[canonical_order(events)]


class EventLogRecorder:
    """Accumulates event rows and metadata during one campaign.

    The executors call :meth:`emit` (scalar, per-device reference loop
    and the event-driven replay) or :meth:`emit_block` (whole-fleet
    arrays, columnar path); the orchestrator calls :meth:`finalize`
    once to obtain the sealed :class:`EventLog`.

    Recording is designed to be almost free next to execution: both
    emit paths only buffer references to the columns the executor
    already computed (callers must not mutate emitted arrays
    afterwards), and the structured row array is materialised lazily on
    the log's first read — never inside the recorded run's hot path.
    """

    __slots__ = ("_chunks", "_n", "meta")

    def __init__(self) -> None:
        self._chunks: List[_Chunk] = []
        self._n = 0
        self.meta: Dict[str, Any] = {"schema": SCHEMA_VERSION}

    def set_meta(self, **fields: Any) -> None:
        """Merge ``fields`` into the log metadata."""
        self.meta.update(fields)

    def emit(
        self,
        kind: EventKind,
        frame: int,
        device: int = -1,
        group: int = -1,
        a: float = 0.0,
        b: float = 0.0,
    ) -> None:
        """Record one event (scalar path)."""
        self._chunks.append((KIND_CODES[kind], 1, frame, device, group, a, b))
        self._n += 1

    def emit_block(
        self,
        kind: EventKind,
        frame: Any,
        device: Any = -1,
        group: Any = -1,
        a: Any = 0.0,
        b: Any = 0.0,
    ) -> None:
        """Record a block of same-kind events (vectorised path).

        Array arguments broadcast against each other; scalars fill.
        The arrays are buffered by reference, not copied.
        """
        size = max(
            column.size if isinstance(column, np.ndarray) else 1
            for column in (frame, device, group, a, b)
        )
        self._chunks.append((KIND_CODES[kind], size, frame, device, group, a, b))
        self._n += size

    def finalize(self, **extra_meta: Any) -> "EventLog":
        """Seal the recording into an :class:`EventLog`.

        The returned log is complete and immutable but *lazy*: the
        canonically sorted row array is built on first access to
        :attr:`EventLog.events`.
        """
        meta = dict(self.meta)
        meta.update(extra_meta)
        return EventLog(meta=meta, _chunks=list(self._chunks), _n=self._n)


class EventLog:
    """One cell's campaign events, canonically sorted, plus metadata.

    Either wraps an already-sorted row array (loading, diffing) or the
    recorder's buffered chunks, in which case :attr:`events` expands
    and sorts them on first read.
    """

    __slots__ = ("_events", "_chunks", "_n", "meta")

    def __init__(
        self,
        events: Optional[np.ndarray] = None,
        meta: Optional[Dict[str, Any]] = None,
        _chunks: Optional[List[_Chunk]] = None,
        _n: int = 0,
    ) -> None:
        self.meta = {} if meta is None else meta
        self._chunks = _chunks
        if events is None and _chunks is None:
            events = np.zeros(0, dtype=EVENT_DTYPE)
        self._events = events
        self._n = _n

    @property
    def events(self) -> np.ndarray:
        """The canonically sorted row array (materialised on demand)."""
        if self._events is None:
            self._events = _materialise_chunks(
                self._chunks or (), int(self.meta.get("cell", 0))
            )
            self._chunks = None
        return self._events

    @property
    def n_events(self) -> int:
        """Number of recorded events."""
        if self._events is None:
            return self._n
        return int(self._events.size)

    def of_kind(self, kind: EventKind) -> np.ndarray:
        """All rows of ``kind`` (a filtered copy, canonical order)."""
        return self.events[self.events["kind"] == KIND_CODES[kind]]

    def for_device(self, device: int) -> np.ndarray:
        """All rows concerning fleet index ``device``."""
        return self.events[self.events["device"] == device]

    def counts_by_kind(self) -> Dict[str, int]:
        """Event count per kind name (only kinds that occur)."""
        codes, counts = np.unique(self.events["kind"], return_counts=True)
        return {
            CODE_TO_KIND[int(code)].value: int(count)
            for code, count in zip(codes, counts)
        }

    def with_appended(self, rows: np.ndarray) -> "EventLog":
        """A new log with ``rows`` merged in (re-sorted canonically)."""
        rows = np.asarray(rows, dtype=EVENT_DTYPE)
        rows = rows.copy()
        rows["cell"] = int(self.meta.get("cell", 0))
        events = np.concatenate([self.events, rows])
        events = events[canonical_order(events)]
        return EventLog(events=events, meta=dict(self.meta))


def repair_round_rows(
    segments_per_round: Sequence[int], horizon_frames: int
) -> np.ndarray:
    """REPAIR_ROUND rows appended after the radio horizon.

    Application-layer repair happens outside the radio timeline, so the
    rounds are logged on synthetic frames past the horizon — one frame
    per round, in order — which keeps the canonical sort meaningful.
    """
    rows = np.zeros(len(segments_per_round), dtype=EVENT_DTYPE)
    rows["kind"] = KIND_CODES[EventKind.REPAIR_ROUND]
    rows["device"] = -1
    rows["group"] = -1
    for i, segments in enumerate(segments_per_round):
        rows["frame"][i] = horizon_frames + 1 + i
        rows["a"][i] = float(segments)
        rows["b"][i] = float(i + 1)
    return rows


def segment_loss_rows(
    missing_per_round: Sequence[int], horizon_frames: int
) -> np.ndarray:
    """SEGMENT_LOSS rows appended after the radio horizon.

    One row per repair round, on the same synthetic frame as that
    round's REPAIR_ROUND row (the kinds disambiguate the canonical
    sort): ``a`` is the number of (device, segment) pairs still missing
    *after* the round — the loss that drives the next round — and ``b``
    the 1-based round number. The last row's ``a`` is the campaign's
    residual miss count (0 unless ``max_rounds`` was hit).
    """
    rows = np.zeros(len(missing_per_round), dtype=EVENT_DTYPE)
    rows["kind"] = KIND_CODES[EventKind.SEGMENT_LOSS]
    rows["device"] = -1
    rows["group"] = -1
    for i, missing in enumerate(missing_per_round):
        rows["frame"][i] = horizon_frames + 1 + i
        rows["a"][i] = float(missing)
        rows["b"][i] = float(i + 1)
    return rows


# ----------------------------------------------------------------------
# Live service metrics: campaign-kind rollup
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LiveMetrics:
    """Rollup of the campaign-service events in a log.

    Computed by :func:`live_metrics` over the six CAMPAIGN_*/DEVICE_*
    kinds the live service emits (``group`` carries the campaign id).

    Attributes:
        campaigns: number of CAMPAIGN_SUBMIT events.
        revisions: number of CAMPAIGN_REVISE events.
        devices_joined: total devices that joined mid-campaign.
        devices_left: total devices that left mid-campaign.
        windows_admitted: windows the arbiter admitted (ADMIT events,
            including deferred ones).
        windows_deferred: admitted windows that were shifted (DEFER).
        total_defer_frames: summed shift over all deferred windows.
        per_campaign: campaign id -> per-kind event counts.
    """

    campaigns: int
    revisions: int
    devices_joined: int
    devices_left: int
    windows_admitted: int
    windows_deferred: int
    total_defer_frames: int
    per_campaign: Dict[int, Dict[str, int]]

    @property
    def churn(self) -> int:
        """Total membership changes (joins + leaves)."""
        return self.devices_joined + self.devices_left


def live_metrics(log: Union["EventLog", np.ndarray]) -> LiveMetrics:
    """Summarise the campaign-service activity recorded in ``log``.

    Accepts an :class:`EventLog` or a raw row array. Logs written by the
    batch pipeline contain no service kinds and roll up to all-zeros.
    """
    events = log.events if isinstance(log, EventLog) else np.asarray(log)
    service_codes = {
        KIND_CODES[kind]: kind
        for kind in (
            EventKind.CAMPAIGN_SUBMIT,
            EventKind.CAMPAIGN_REVISE,
            EventKind.CAMPAIGN_ADMIT,
            EventKind.CAMPAIGN_DEFER,
            EventKind.DEVICE_JOIN,
            EventKind.DEVICE_LEAVE,
        )
    }
    per_campaign: Dict[int, Dict[str, int]] = {}
    revise_rows = events[
        events["kind"] == KIND_CODES[EventKind.CAMPAIGN_REVISE]
    ]
    defer_rows = events[events["kind"] == KIND_CODES[EventKind.CAMPAIGN_DEFER]]
    for row in events:
        kind = service_codes.get(int(row["kind"]))
        if kind is None:
            continue
        counters = per_campaign.setdefault(int(row["group"]), {})
        counters[kind.value] = counters.get(kind.value, 0) + 1
    return LiveMetrics(
        campaigns=int(
            np.count_nonzero(
                events["kind"] == KIND_CODES[EventKind.CAMPAIGN_SUBMIT]
            )
        ),
        revisions=int(revise_rows.size),
        devices_joined=int(revise_rows["a"].sum()),
        devices_left=int(revise_rows["b"].sum()),
        windows_admitted=int(
            np.count_nonzero(
                events["kind"] == KIND_CODES[EventKind.CAMPAIGN_ADMIT]
            )
        ),
        windows_deferred=int(defer_rows.size),
        total_defer_frames=int(defer_rows["b"].sum()),
        per_campaign=per_campaign,
    )


# ----------------------------------------------------------------------
# STRICT replay: log -> CampaignResult, no re-simulation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LogPlanSummary:
    """The slice of a plan a log preserves (duck-types ``MulticastPlan``
    where :class:`~repro.sim.metrics.CampaignResult` needs it)."""

    mechanism: str
    n_transmissions: int
    payload_bytes: int
    announce_frame: int


def _require_meta(meta: Mapping[str, Any]) -> None:
    missing = [key for key in REQUIRED_META if key not in meta]
    if missing:
        raise SimulationError(f"event log metadata is missing {missing}")
    if int(meta["schema"]) != SCHEMA_VERSION:
        raise SimulationError(
            f"event log schema {meta['schema']} != supported {SCHEMA_VERSION}"
        )


def _one_per_device(
    rows: np.ndarray, devices: np.ndarray, what: str
) -> np.ndarray:
    """``rows`` sorted by device, validated to cover ``devices`` exactly."""
    order = np.argsort(rows["device"], kind="stable")
    rows = rows[order]
    if not np.array_equal(rows["device"], devices):
        raise SimulationError(f"log is missing {what} events for some devices")
    return rows


def _profile_from_meta(meta: Mapping[str, Any]) -> EnergyProfile:
    spec = meta.get("energy_profile")
    if not spec:
        return DEFAULT_PROFILE
    return EnergyProfile(
        name=str(spec["name"]),
        voltage_v=float(spec["voltage_v"]),
        current_ma={
            PowerState[name]: float(ma) for name, ma in spec["current_ma"].items()
        },
    )


def replay_strict(log: EventLog) -> CampaignResult:
    """Reconstruct the :class:`CampaignResult` from the log alone.

    STRICT contract: nothing is re-simulated and no random numbers are
    drawn; every duration comes from the log (events for per-device
    draws, metadata for deterministic constants). The per-state adds
    replicate the live executors' float-fold order, so the rebuilt
    ledgers, timings and realised starts are bit-identical to the live
    run — not merely close.
    """
    meta = log.meta
    _require_meta(meta)
    horizon = int(meta["horizon_frames"])
    horizon_s = frames_to_seconds(horizon)
    n_tx = int(meta["n_transmissions"])

    tx_start = log.of_kind(EventKind.TX_START)
    tx_end = log.of_kind(EventKind.TX_END)
    if tx_start.size != n_tx or tx_end.size != n_tx:
        raise SimulationError(
            f"log has {tx_start.size} TX_START / {tx_end.size} TX_END events "
            f"for {n_tx} transmissions"
        )
    start_a = tx_start["a"][np.argsort(tx_start["group"], kind="stable")]
    end_a = tx_end["a"][np.argsort(tx_end["group"], kind="stable")]

    done = log.of_kind(EventKind.DEVICE_DONE)
    n = int(done.size)
    if n != int(meta["n_devices"]):
        raise SimulationError(
            f"log has {n} DEVICE_DONE events for {meta['n_devices']} devices"
        )
    done = done[np.argsort(done["device"], kind="stable")]
    devices = done["device"].copy()
    if n and np.any(devices[1:] == devices[:-1]):
        raise SimulationError("log has duplicate DEVICE_DONE events")
    tx_of = done["group"].astype(np.int64)
    wait = done["a"].copy()
    rx = done["b"].copy()

    ready_ev = _one_per_device(
        log.of_kind(EventKind.CONNECTION_READY), devices, "CONNECTION_READY"
    )
    main_ra = ready_ev["a"].copy()
    ready = ready_ev["b"].copy()
    po_ev = _one_per_device(log.of_kind(EventKind.PO_MONITOR), devices, "PO_MONITOR")
    po_count = po_ev["a"].copy()
    pages = np.concatenate(
        [log.of_kind(EventKind.PAGE), log.of_kind(EventKind.EXTENDED_PAGE)]
    )
    pages = _one_per_device(pages, devices, "PAGE/EXTENDED_PAGE")
    page_rx = pages["a"].copy()

    def membership(sub: np.ndarray) -> np.ndarray:
        mask = np.zeros(n, dtype=bool)
        pos = np.searchsorted(devices, sub["device"])
        if np.any(pos >= n) or np.any(devices[pos] != sub["device"]):
            raise SimulationError("log references a device with no DEVICE_DONE")
        mask[pos] = True
        return mask, pos

    adapt = log.of_kind(EventKind.ADAPTATION_PAGE)
    is_da, da_pos = membership(adapt)
    episode = np.zeros(n, dtype=np.float64)
    ra_base = np.zeros(n, dtype=np.float64)
    episode[da_pos] = adapt["a"]
    ra_base[da_pos] = adapt["b"]

    # The add order below mirrors the columnar executor's accumulation
    # (itself float-identical to the reference loop and the replay), so
    # per-state sums reproduce the live ledgers bit for bit.
    pm = float(meta["paging_message_s"])
    ledgers = LedgerArray(n)
    ledgers.add(PowerState.PO_MONITOR, po_count * float(meta["po_monitor_s"]))
    ledgers.add(PowerState.PAGING_RX, page_rx + np.where(is_da, pm, 0.0))
    ledgers.add(PowerState.RANDOM_ACCESS, np.where(is_da, ra_base, 0.0) + main_ra)
    release = float(meta["release_s"])
    tail = np.where(is_da, release + float(meta["restore_s"]), release)
    ledgers.add(
        PowerState.RRC_SIGNALLING,
        (np.where(is_da, episode - ra_base, 0.0) + float(meta["rrc_setup_s"]))
        + tail,
    )
    ledgers.add(PowerState.CONNECTED_WAIT, wait)
    ledgers.add(PowerState.CONNECTED_RX, rx)
    light = ledgers.group_seconds(StateGroup.LIGHT_SLEEP)
    connected = ledgers.group_seconds(StateGroup.CONNECTED)
    ledgers.add(
        PowerState.DEEP_SLEEP, np.maximum(0.0, (horizon_s - light) - connected)
    )
    # The columnar executor's ledgers pass through a fancy-index take()
    # whose output strides steer BLAS's reduction order in energy_mj.
    # An identity take reproduces that layout, so the rebuilt energy sum
    # is bit-identical too — not just the per-state seconds.
    ledgers = ledgers.take(np.arange(n))

    outcomes = FleetOutcomes(
        device_indices=devices,
        transmission_indices=tx_of,
        ledgers=ledgers,
        ready_s=ready,
        wait_s=wait,
        updated_s=end_a[tx_of].copy(),
    )
    plan = LogPlanSummary(
        mechanism=str(meta["mechanism"]),
        n_transmissions=n_tx,
        payload_bytes=int(meta["payload_bytes"]),
        announce_frame=int(meta["announce_frame"]),
    )
    return CampaignResult(
        plan=plan,  # type: ignore[arg-type]  # duck-typed plan summary
        horizon_frames=horizon,
        columnar=outcomes,
        actual_start_s=tuple(float(s) for s in start_a),
        energy_profile=_profile_from_meta(meta),
    )


def compare_results(live: CampaignResult, rebuilt: CampaignResult) -> List[str]:
    """Bit-identity findings between a live result and a STRICT rebuild.

    Returns an empty list when every per-device quantity — ledger
    seconds per power state, readiness, wait, update time — and every
    realised start matches the live run exactly (float equality, not
    tolerance). ``live`` may be row- or columnar-backed.
    """
    findings: List[str] = []
    if live.horizon_frames != rebuilt.horizon_frames:
        findings.append(
            f"horizon {live.horizon_frames} != rebuilt {rebuilt.horizon_frames}"
        )
    if live.actual_start_s != rebuilt.actual_start_s:
        findings.append("realised transmission starts differ")
    reb = rebuilt.columnar
    if reb is None:
        raise SimulationError("rebuilt result must be columnar")
    if live.n_devices != rebuilt.n_devices:
        findings.append(f"{live.n_devices} devices != rebuilt {rebuilt.n_devices}")
        return findings
    live_col = live.columnar
    if live_col is not None:
        for name in ("device_indices", "transmission_indices"):
            if not np.array_equal(getattr(live_col, name), getattr(reb, name)):
                findings.append(f"column {name} differs")
        for name in ("ready_s", "wait_s", "updated_s"):
            bad = int((getattr(live_col, name) != getattr(reb, name)).sum())
            if bad:
                findings.append(f"column {name} differs on {bad} devices")
        for i, state in enumerate(STATE_ORDER):
            bad = int((live_col.ledgers.seconds[i] != reb.ledgers.seconds[i]).sum())
            if bad:
                findings.append(f"ledger {state.name} differs on {bad} devices")
        return findings
    for column, outcome in enumerate(live.outcomes):
        if outcome.device_index != int(reb.device_indices[column]):
            findings.append(f"device order differs at column {column}")
            break
        if outcome.transmission_index != int(reb.transmission_indices[column]):
            findings.append(f"device {outcome.device_index}: transmission differs")
        for name in ("ready_s", "wait_s", "updated_s"):
            if getattr(outcome, name) != float(getattr(reb, name)[column]):
                findings.append(f"device {outcome.device_index}: {name} differs")
        for i, state in enumerate(STATE_ORDER):
            if outcome.ledger.seconds_in(state) != float(reb.ledgers.seconds[i, column]):
                findings.append(
                    f"device {outcome.device_index}: ledger {state.name} differs"
                )
    return findings


# ----------------------------------------------------------------------
# Structural diff
# ----------------------------------------------------------------------
def _render_event(row: np.ndarray) -> str:
    kind = CODE_TO_KIND.get(int(row["kind"]))
    name = kind.value if kind else f"kind#{int(row['kind'])}"
    return (
        f"frame={int(row['frame'])} device={int(row['device'])} "
        f"kind={name} group={int(row['group'])} "
        f"a={float(row['a'])!r} b={float(row['b'])!r}"
    )


@dataclass
class LogDiff:
    """Structural difference between two event logs (one cell each)."""

    n_events: Tuple[int, int]
    first_divergence: Optional[int] = None
    first_events: Tuple[str, str] = ("", "")
    kind_deltas: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    device_deltas: List[Tuple[int, int, int]] = field(default_factory=list)
    meta_notes: List[str] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        """True when the two logs are event-identical (meta may drift)."""
        return (
            self.first_divergence is None
            and self.n_events[0] == self.n_events[1]
        )


#: Meta keys whose drift is worth reporting in a diff.
_DIFF_META_KEYS = (
    "fingerprint",
    "scenario",
    "seed",
    "run_index",
    "cell",
    "mechanism",
    "horizon_frames",
    "announce_frame",
    "n_devices",
    "n_transmissions",
    "payload_bytes",
    "emitter",
)


def _meta_notes(a: Mapping[str, Any], b: Mapping[str, Any]) -> List[str]:
    notes = []
    for key in _DIFF_META_KEYS:
        va, vb = a.get(key), b.get(key)
        if va != vb:
            notes.append(f"meta {key}: {va!r} != {vb!r}")
    return notes


def diff_logs(a: EventLog, b: EventLog) -> LogDiff:
    """Align two logs and report where and how they diverge.

    Events are compared field-exact (floats included: recorded runs are
    bit-reproducible, so any drift is a real behavioural difference) in
    canonical order. The first diverging row is the headline; per-kind
    and per-device count deltas summarise the blast radius.
    """
    ea, eb = a.events, b.events
    diff = LogDiff(n_events=(int(ea.size), int(eb.size)))
    diff.meta_notes = _meta_notes(a.meta, b.meta)

    m = min(ea.size, eb.size)
    pa, pb = ea[:m], eb[:m]
    mismatch = np.zeros(m, dtype=bool)
    for name in ("frame", "device", "kind", "group", "a", "b"):
        mismatch |= pa[name] != pb[name]
    if np.any(mismatch):
        first = int(np.argmax(mismatch))
        diff.first_divergence = first
        diff.first_events = (_render_event(ea[first]), _render_event(eb[first]))
    elif ea.size != eb.size:
        diff.first_divergence = m
        longer = ea if ea.size > eb.size else eb
        rendered = _render_event(longer[m])
        diff.first_events = (
            (rendered, "<no event>") if ea.size > eb.size else ("<no event>", rendered)
        )
    else:
        return diff

    counts_a, counts_b = a.counts_by_kind(), b.counts_by_kind()
    for kind in sorted(set(counts_a) | set(counts_b)):
        ca, cb = counts_a.get(kind, 0), counts_b.get(kind, 0)
        if ca != cb:
            diff.kind_deltas[kind] = (ca, cb)

    def per_device(events: np.ndarray) -> Dict[int, int]:
        rows = events[events["device"] >= 0]
        dev, counts = np.unique(rows["device"], return_counts=True)
        return {int(d): int(c) for d, c in zip(dev, counts)}

    da, db = per_device(ea), per_device(eb)
    for device in sorted(set(da) | set(db)):
        ca, cb = da.get(device, 0), db.get(device, 0)
        if ca != cb:
            diff.device_deltas.append((device, ca, cb))
    return diff


def format_diff(diff: LogDiff, label: str = "") -> str:
    """Human-readable rendering of a :class:`LogDiff`."""
    prefix = f"[{label}] " if label else ""
    lines: List[str] = []
    for note in diff.meta_notes:
        lines.append(f"{prefix}{note}")
    if diff.is_empty:
        lines.append(f"{prefix}events: identical ({diff.n_events[0]} events)")
        return "\n".join(lines)
    lines.append(
        f"{prefix}events: {diff.n_events[0]} vs {diff.n_events[1]}, "
        f"first divergence at row {diff.first_divergence}"
    )
    lines.append(f"{prefix}  a: {diff.first_events[0]}")
    lines.append(f"{prefix}  b: {diff.first_events[1]}")
    for kind, (ca, cb) in diff.kind_deltas.items():
        lines.append(f"{prefix}  kind {kind}: {ca} vs {cb} events")
    shown = diff.device_deltas[:10]
    for device, ca, cb in shown:
        lines.append(f"{prefix}  device {device}: {ca} vs {cb} events")
    hidden = len(diff.device_deltas) - len(shown)
    if hidden > 0:
        lines.append(f"{prefix}  ... {hidden} more devices differ")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Whole-run container (.npz)
# ----------------------------------------------------------------------
_CELL_KEY = re.compile(r"^cell_(\d+)_events$")


def _jsonable(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclass
class RunLog:
    """All event logs of one Monte-Carlo run, one per cell.

    ``meta`` carries the run key — scenario name, spec fingerprint,
    seed, run index — and serialises with the cell logs into a single
    ``.npz``.
    """

    meta: Dict[str, Any]
    cells: Dict[int, EventLog]

    def save(self, path: Union[str, Path]) -> Path:
        """Write the run to ``path`` (single compressed ``.npz``)."""
        path = Path(path)
        arrays: Dict[str, np.ndarray] = {
            "run_meta": np.array(json.dumps(_jsonable(self.meta)))
        }
        for cell_id in sorted(self.cells):
            log = self.cells[cell_id]
            arrays[f"cell_{cell_id}_events"] = log.events
            arrays[f"cell_{cell_id}_meta"] = np.array(
                json.dumps(_jsonable(log.meta))
            )
        with path.open("wb") as handle:
            np.savez_compressed(handle, **arrays)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunLog":
        """Read a run previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise SimulationError(f"no run log at {path}")
        with np.load(path, allow_pickle=False) as data:
            if "run_meta" not in data:
                raise SimulationError(f"{path} is not a recorded run (.npz)")
            meta = json.loads(str(data["run_meta"]))
            cells: Dict[int, EventLog] = {}
            for key in data.files:
                match = _CELL_KEY.match(key)
                if not match:
                    continue
                cell_id = int(match.group(1))
                cell_meta = json.loads(str(data[f"cell_{cell_id}_meta"]))
                events = np.asarray(data[key], dtype=EVENT_DTYPE)
                cells[cell_id] = EventLog(events=events, meta=cell_meta)
        if not cells:
            raise SimulationError(f"{path} contains no cell logs")
        return cls(meta=meta, cells=cells)


@dataclass
class RunLogDiff:
    """Cell-by-cell difference between two recorded runs."""

    meta_notes: List[str] = field(default_factory=list)
    cell_notes: List[str] = field(default_factory=list)
    cell_diffs: Dict[int, LogDiff] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        """True when every shared cell is event-identical and the runs
        cover the same cells (meta drift alone does not count)."""
        return not self.cell_notes and all(
            diff.is_empty for diff in self.cell_diffs.values()
        )


def diff_runlogs(a: RunLog, b: RunLog) -> RunLogDiff:
    """Diff two recorded runs cell by cell."""
    diff = RunLogDiff(meta_notes=_meta_notes(a.meta, b.meta))
    only_a = sorted(set(a.cells) - set(b.cells))
    only_b = sorted(set(b.cells) - set(a.cells))
    if only_a:
        diff.cell_notes.append(f"cells only in a: {only_a}")
    if only_b:
        diff.cell_notes.append(f"cells only in b: {only_b}")
    for cell_id in sorted(set(a.cells) & set(b.cells)):
        diff.cell_diffs[cell_id] = diff_logs(a.cells[cell_id], b.cells[cell_id])
    return diff


def format_runlog_diff(diff: RunLogDiff) -> str:
    """Human-readable rendering of a :class:`RunLogDiff`."""
    lines = list(diff.meta_notes) + list(diff.cell_notes)
    for cell_id in sorted(diff.cell_diffs):
        lines.append(format_diff(diff.cell_diffs[cell_id], label=f"cell {cell_id}"))
    if diff.is_empty:
        lines.append("runs are event-identical")
    return "\n".join(lines)


def profile_meta(profile: EnergyProfile) -> Dict[str, Any]:
    """Serialisable description of an energy profile for the log meta."""
    return {
        "name": profile.name,
        "voltage_v": profile.voltage_v,
        "current_ma": {
            state.name: profile.current_ma[state] for state in PowerState
        },
    }
