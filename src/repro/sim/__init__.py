"""Simulation: executors, the event engine and the Monte-Carlo harness.

Three executors produce equivalent campaign results from a plan:

* :class:`~repro.sim.executor.CampaignExecutor` with ``columnar=True``
  (the default) — the vectorised fleet fast path
  (:mod:`repro.sim.columnar`): whole-fleet array arithmetic and an
  array-of-ledgers, used by experiments;
* the same executor with ``columnar=False`` — direct per-device
  timeline arithmetic, kept as the equivalence oracle;
* :class:`~repro.sim.replay.EventDrivenCampaign` — replays the plan on
  the discrete-event engine (:mod:`repro.sim.engine`), used by the
  integration tests to cross-validate the arithmetic and by examples
  that want an inspectable event trace.

:mod:`repro.sim.montecarlo` runs seeded repetitions and aggregates:
in-process (``backend="serial"``), sharded across a process pool
(``backend="process"``, :mod:`repro.sim.parallel`), or flattened into
the fused (run x cell) work queue (``backend="fused"``,
:mod:`repro.sim.dispatch`) — all bit-identical — with an optional
on-disk :class:`~repro.sim.parallel.ResultCache`.

Every executor can additionally record a columnar event log
(:mod:`repro.sim.eventlog`): pass an
:class:`~repro.sim.eventlog.EventLogRecorder` and the run's semantic
events serialise to one ``.npz`` per run, STRICT-replayable back into a
bit-identical :class:`~repro.sim.metrics.CampaignResult` and diffable
event-by-event.
"""

from repro.sim.rng import generator_for, spawn_generators
from repro.sim.eventlog import (
    EVENT_DTYPE,
    KIND_CODES,
    SCHEMA_VERSION,
    EventLog,
    EventLogRecorder,
    LogDiff,
    RunLog,
    RunLogDiff,
    canonical_order,
    compare_results,
    diff_logs,
    diff_runlogs,
    format_diff,
    format_runlog_diff,
    repair_round_rows,
    replay_strict,
    segment_loss_rows,
)
from repro.sim.metrics import (
    CampaignResult,
    DeviceOutcome,
    FleetOutcomes,
    FleetSummary,
)
from repro.sim.executor import CampaignExecutor
from repro.sim.columnar import execute_columnar
from repro.sim.events import Event, EventKind
from repro.sim.engine import Simulator
from repro.sim.replay import EventDrivenCampaign
from repro.sim.montecarlo import (
    BACKENDS,
    MonteCarlo,
    RunStatistics,
    run_monte_carlo,
)
from repro.sim.parallel import ResultCache, fingerprint, shard_ranges

__all__ = [
    "generator_for",
    "spawn_generators",
    "DeviceOutcome",
    "CampaignResult",
    "FleetOutcomes",
    "FleetSummary",
    "CampaignExecutor",
    "execute_columnar",
    "Event",
    "EventKind",
    "Simulator",
    "EventDrivenCampaign",
    "BACKENDS",
    "MonteCarlo",
    "RunStatistics",
    "run_monte_carlo",
    "ResultCache",
    "fingerprint",
    "shard_ranges",
    "SCHEMA_VERSION",
    "EVENT_DTYPE",
    "KIND_CODES",
    "EventLog",
    "EventLogRecorder",
    "LogDiff",
    "RunLog",
    "RunLogDiff",
    "canonical_order",
    "compare_results",
    "diff_logs",
    "diff_runlogs",
    "format_diff",
    "format_runlog_diff",
    "repair_round_rows",
    "replay_strict",
    "segment_loss_rows",
]
