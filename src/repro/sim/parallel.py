"""Parallel sharded Monte-Carlo execution and an on-disk result cache.

The serial harness maps the run function over ``n_runs`` child
generators one by one. This module provides the ``process`` backend:
the run-index range is split into contiguous shards, each shard is
dispatched to a :class:`~concurrent.futures.ProcessPoolExecutor`
worker, and every worker re-derives the *same* child generators from
the root seed (``SeedSequence(seed).spawn(n_runs)`` sliced to its
shard). Run ``i`` therefore sees an identical generator no matter how
many workers execute the campaign — results are bit-identical to the
serial path for any worker count.

The :class:`ResultCache` persists aggregated metric arrays keyed by
the deterministic task address ``(tag, scenario fingerprint, seed,
n_runs)`` so regenerating an already-computed figure is a cache lookup
instead of a simulation — and every backend (serial, process, fused)
derives the same key for the same campaign, so entries are shared
across backends and worker counts.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, is_dataclass
from functools import partial
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro._version import __version__
from repro.errors import ConfigurationError

#: A run function: (rng, run_index) -> {metric name: value}.
RunFn = Callable[[np.random.Generator, int], Mapping[str, float]]

#: A map function: (rng, item_index, item) -> any picklable result.
MapFn = Callable[[np.random.Generator, int, Any], Any]

#: Shards dispatched per worker; >1 smooths out uneven shard runtimes.
CHUNKS_PER_WORKER = 4


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------
def shard_ranges(n_runs: int, n_shards: int) -> List[range]:
    """Split ``range(n_runs)`` into at most ``n_shards`` contiguous,
    non-empty, near-equal ranges covering every run index exactly once."""
    if n_runs < 1:
        raise ConfigurationError(f"n_runs must be >= 1, got {n_runs}")
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    n_shards = min(n_shards, n_runs)
    base, extra = divmod(n_runs, n_shards)
    ranges = []
    start = 0
    for shard in range(n_shards):
        size = base + (1 if shard < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


def default_workers() -> int:
    """Worker count used when none is given (all visible cores)."""
    return max(1, os.cpu_count() or 1)


def _metric_run_item(
    rng: np.random.Generator, index: int, _item: Any, *, fn: RunFn
) -> Dict[str, float]:
    """Adapter: one Monte-Carlo run as a map item (coerces to floats
    in the worker, so only plain metric dicts cross back)."""
    return {k: float(v) for k, v in fn(rng, index).items()}


def run_in_processes(
    fn: RunFn,
    seed: int,
    n_runs: int,
    workers: Optional[int] = None,
    chunks_per_worker: int = CHUNKS_PER_WORKER,
) -> List[Dict[str, float]]:
    """Execute ``fn`` for every run index across a process pool.

    Returns the per-run metric dicts in run-index order. ``fn`` must be
    picklable (a module-level function or :func:`functools.partial` of
    one — not a lambda or closure). A thin front over
    :func:`map_in_processes`, which owns the sharding and the per-index
    child-RNG contract.
    """
    if n_runs < 1:
        raise ConfigurationError(f"n_runs must be >= 1, got {n_runs}")
    return map_in_processes(
        partial(_metric_run_item, fn=fn),
        seed,
        range(n_runs),
        workers=workers,
        chunks_per_worker=chunks_per_worker,
    )


# ----------------------------------------------------------------------
# Generic item mapping (per-item child RNGs, arbitrary picklable results)
# ----------------------------------------------------------------------
def _map_shard(
    fn: MapFn, seed: int, n_items: int, start: int, items: Sequence[Any]
) -> List[Any]:
    """Worker entry point: map items ``[start, start+len(items))``.

    Spawns the full ``n_items`` child sequence and slices it, so item
    ``i`` gets the exact generator the serial path would hand it. Only
    the shard's own item slice crosses the process boundary.
    """
    children = np.random.SeedSequence(seed).spawn(n_items)[
        start : start + len(items)
    ]
    return [
        fn(np.random.default_rng(child), start + offset, item)
        for offset, (child, item) in enumerate(zip(children, items))
    ]


def map_serial(fn: MapFn, seed: int, items: Sequence[Any]) -> List[Any]:
    """Map ``fn`` over ``items`` in-process with per-item child RNGs.

    The reference path :func:`map_in_processes` is bit-identical to:
    item ``i`` always receives ``SeedSequence(seed).spawn(n)[i]``.
    """
    items = list(items)
    if not items:
        raise ConfigurationError("no items to map")
    return _map_shard(fn, seed, len(items), 0, items)


def map_in_processes(
    fn: MapFn,
    seed: int,
    items: Sequence[Any],
    workers: Optional[int] = None,
    chunks_per_worker: int = CHUNKS_PER_WORKER,
) -> List[Any]:
    """Map ``fn`` over ``items`` across a process pool.

    The generalisation of :func:`run_in_processes` from metric dicts to
    arbitrary picklable results: items are split into contiguous shards,
    each worker re-derives the same per-item child generators from the
    root seed, and each shard ships only its own slice of ``items`` —
    results are bit-identical to :func:`map_serial` for any worker
    count. ``fn``, every item and every result must be picklable.
    """
    items = list(items)
    if not items:
        raise ConfigurationError("no items to map")
    workers = default_workers() if workers is None else workers
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if chunks_per_worker < 1:
        raise ConfigurationError(
            f"chunks_per_worker must be >= 1, got {chunks_per_worker}"
        )
    try:
        pickle.dumps(fn)
    except Exception as exc:
        raise ConfigurationError(
            "map_in_processes requires a picklable map function "
            "(module-level function or functools.partial of one); "
            f"got {fn!r}: {exc}"
        ) from exc

    shards = shard_ranges(len(items), workers * chunks_per_worker)
    results: List[Optional[List[Any]]] = [None] * len(shards)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(
                _map_shard,
                fn,
                seed,
                len(items),
                shard.start,
                items[shard.start : shard.stop],
            ): i
            for i, shard in enumerate(shards)
        }
        for future, i in futures.items():
            results[i] = future.result()
    out: List[Any] = []
    for shard_result in results:
        assert shard_result is not None
        out.extend(shard_result)
    return out


# ----------------------------------------------------------------------
# Scenario fingerprinting
# ----------------------------------------------------------------------
def _canonical(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-stable primitives.

    Plain objects are fingerprinted through their ``vars()`` so every
    attribute participates (a lossy ``repr`` would let two differently
    calibrated scenarios collide on one cache key). Mapping keys are
    canonicalised to strings and sorted, so enum-keyed mappings hash
    stably too.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        return _canonical(asdict(obj))
    if isinstance(obj, Mapping):
        return dict(
            sorted((str(k), _canonical(v)) for k, v in obj.items())
        )
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = [_canonical(v) for v in obj]
        if isinstance(obj, (set, frozenset)):
            items = sorted(items, key=repr)
        return items
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    attrs = getattr(obj, "__dict__", None)
    if attrs:
        return {
            "__class__": type(obj).__qualname__,
            **dict(sorted((str(k), _canonical(v)) for k, v in attrs.items())),
        }
    return repr(obj)


def fingerprint(obj: Any) -> str:
    """A short stable hash of a (nested) dataclass / mapping / sequence."""
    blob = json.dumps(_canonical(obj), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------
class ResultCache:
    """Persists aggregated Monte-Carlo metric arrays as JSON files.

    A cache entry is keyed by the sha256 of the deterministic task
    address ``(tag, scenario fingerprint, seed, n_runs)`` — exactly
    the coordinates that fix a campaign's results bit-for-bit, and
    nothing else. Execution details (backend, worker count, code
    version) are deliberately absent: any backend replaying the same
    address reproduces the same arrays, so it may reuse any backend's
    entry. The package version that *wrote* an entry is recorded in
    its stored metadata for forensics, not in the key.
    """

    def __init__(self, directory: "str | os.PathLike[str]") -> None:
        self._dir = Path(directory)

    @property
    def directory(self) -> Path:
        """Root directory entries are written beneath."""
        return self._dir

    @staticmethod
    def key(
        tag: str,
        config_fingerprint: str,
        seed: int,
        n_runs: int,
    ) -> str:
        """The cache key for one aggregated campaign: a hash of its
        deterministic task address and nothing more."""
        blob = json.dumps(
            {
                "tag": tag,
                "fingerprint": config_fingerprint,
                "seed": seed,
                "n_runs": n_runs,
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self._dir / f"{key}.json"

    def load(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        """The stored metric arrays for ``key``, or None on a miss."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return None
        metrics = payload.get("metrics")
        if not isinstance(metrics, dict):
            return None
        try:
            return {
                name: np.asarray(values, dtype=np.float64)
                for name, values in metrics.items()
            }
        except (TypeError, ValueError):
            return None  # structurally corrupt entry == miss

    def store(
        self,
        key: str,
        metrics: Mapping[str, Sequence[float]],
        meta: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Persist ``metrics`` under ``key`` (atomic rename).

        The writing package version is stamped into the entry's
        metadata (callers may override it via ``meta``) so stale
        entries remain attributable even though the key ignores it.
        """
        self._dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "meta": {"version": __version__, **dict(meta or {})},
            "metrics": {
                name: [float(v) for v in values]
                for name, values in metrics.items()
            },
        }
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(path)
        return path
