"""Columnar campaign execution: the vectorised fleet fast path.

Implements exactly the accounting of
:class:`~repro.sim.executor.CampaignExecutor`'s per-device reference
loop, but as NumPy array arithmetic over the whole fleet at once:

* one pass over ``plan.directives`` gathers the directive columns
  (indices, wake methods, page/connect frames, adaptation fields);
* readiness, realised transmission starts, waits, data segments and
  idle-PO counts are computed as array expressions (per-device PO
  counting uses the same integer arithmetic as
  :meth:`repro.drx.schedule.PoSchedule.count_in`);
* the result is an array-of-ledgers
  (:class:`~repro.energy.ledger.LedgerArray`) wrapped in a columnar
  :class:`~repro.sim.metrics.CampaignResult` — no per-device Python
  objects exist on the hot path.

The per-device reference path stays in :mod:`repro.sim.executor` as the
equivalence oracle; tests pin this path to it (identical structure,
per-device totals within 1e-9). Random-access contention (non-zero
``collision_probability``) draws from ``rng`` device-by-device in
directive order, so even the stochastic path is stream-identical to the
reference.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.eventlog import EventLogRecorder

from repro.core.plan import MulticastPlan, WakeMethod
from repro.devices.fleet import COVERAGE_ORDER, Fleet
from repro.drx.paging import HASHED_ID_SPACE
from repro.energy.ledger import LedgerArray
from repro.energy.profiles import DEFAULT_PROFILE, EnergyProfile
from repro.energy.states import PowerState, StateGroup
from repro.errors import PagingError, SimulationError
from repro.rrc.procedures import ProcedureTimings
from repro.sim.executor import CampaignExecutor
from repro.sim.metrics import CampaignResult, FleetOutcomes
from repro.timebase import (
    FRAMES_PER_HYPERFRAME,
    MS_PER_FRAME,
    frames_to_seconds,
    v_frame_after_seconds,
)

_NORMAL, _ADAPTATION, _EXTENDED = 0, 1, 2

_METHOD_CODES = {
    WakeMethod.PAGED_IN_WINDOW: _NORMAL,
    WakeMethod.IMMEDIATE_PAGE: _NORMAL,
    WakeMethod.DRX_ADAPTATION: _ADAPTATION,
    WakeMethod.EXTENDED_PAGE_TIMER: _EXTENDED,
}


def _v_frames_to_seconds(frames: np.ndarray) -> np.ndarray:
    """Vectorised :func:`repro.timebase.frames_to_seconds` (bit-identical)."""
    return frames * MS_PER_FRAME / 1000.0


def _v_count_in(
    phases: np.ndarray,
    periods: np.ndarray,
    start: np.ndarray,
    end: np.ndarray,
) -> np.ndarray:
    """Per-device PO count in half-open ``[start, end)`` with array bounds.

    Integer-exact mirror of :meth:`repro.drx.schedule.PoSchedule.count_in`.
    """
    k_lo = np.maximum(0, -((phases - start) // periods))
    k_hi = (end - 1 - phases) // periods
    counts = np.maximum(0, k_hi - k_lo + 1)
    return np.where(end <= start, 0, counts)


def _v_paging_phase(
    ue_ids: np.ndarray,
    cycles: np.ndarray,
    nb_num: np.ndarray,
    nb_den: np.ndarray,
) -> np.ndarray:
    """Vectorised :func:`repro.drx.paging.paging_frame_offset`.

    Computes the PO phase of each (identity, cycle, nB) triple with the
    same integer arithmetic as the scalar helper, including the Rel-13
    paging-hyperframe level for eDRX cycles (hashed identity spread).
    """
    pf_cycle = np.minimum(cycles, FRAMES_PER_HYPERFRAME)
    nb_scaled = pf_cycle * nb_num
    if np.any(nb_scaled % nb_den != 0):
        raise PagingError("nB of a cycle is not an integer frame count")
    nb_int = nb_scaled // nb_den
    n = np.minimum(pf_cycle, nb_int)
    if np.any(n < 1):
        raise PagingError("nB yields N < 1 for some device")
    pf_offset = (pf_cycle // n) * (ue_ids % n)

    # Knuth multiplicative mix of repro.drx.paging.default_hashed_id.
    mixed = (ue_ids * 2654435761) & 0xFFFFFFFF
    hashed = (mixed >> 22) & (HASHED_ID_SPACE - 1)
    cycle_hyperframes = np.maximum(1, cycles // FRAMES_PER_HYPERFRAME)
    ph_index = hashed % cycle_hyperframes
    edrx_offset = ph_index * FRAMES_PER_HYPERFRAME + pf_offset
    return np.where(cycles <= FRAMES_PER_HYPERFRAME, pf_offset, edrx_offset)


def execute_columnar(
    fleet: Fleet,
    plan: MulticastPlan,
    timings: ProcedureTimings = ProcedureTimings(),
    energy_profile: EnergyProfile = DEFAULT_PROFILE,
    horizon_frames: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    recorder: Optional["EventLogRecorder"] = None,
) -> CampaignResult:
    """Run ``plan`` against ``fleet`` with whole-fleet array arithmetic.

    When ``recorder`` is given, the campaign's semantic events are
    emitted as vectorised blocks (see :mod:`repro.sim.eventlog`); the
    caller finalises the recorder into an :class:`EventLog`.
    """
    airtime = timings.airtime
    directives = plan.directives
    n = len(directives)

    # ------------------------------------------------------------------
    # Directive columns (the only per-directive Python pass).
    # ------------------------------------------------------------------
    dev = np.empty(n, dtype=np.int64)
    tx = np.empty(n, dtype=np.int64)
    method = np.empty(n, dtype=np.int64)
    page_frame = np.empty(n, dtype=np.int64)
    connect_frame = np.empty(n, dtype=np.int64)
    adapt_frame = np.zeros(n, dtype=np.int64)
    adapt_cycle = np.ones(n, dtype=np.int64)
    for i, d in enumerate(directives):
        dev[i] = d.device_index
        tx[i] = d.transmission_index
        method[i] = _METHOD_CODES[d.method]
        page_frame[i] = d.page_frame
        connect_frame[i] = d.connect_frame
        if d.method is WakeMethod.DRX_ADAPTATION:
            adapt_frame[i] = d.adaptation_page_frame
            adapt_cycle[i] = int(d.adapted_cycle)

    is_da = method == _ADAPTATION
    is_ept = method == _EXTENDED

    fleet_phases = fleet.phases
    fleet_periods = fleet.periods
    phases = fleet_phases[dev]
    periods = fleet_periods[dev]
    coverage_codes = fleet.coverage_codes[dev]

    # ------------------------------------------------------------------
    # Phase 1: readiness and pre-transmission charges.
    # ------------------------------------------------------------------
    ra_base = np.array(
        [timings.random_access.base_duration_s(c) for c in COVERAGE_ORDER],
        dtype=np.float64,
    )[coverage_codes]
    ra_attempts = None
    if timings.random_access.collision_probability == 0.0:
        main_ra = ra_base
        # Deterministic adaptation episode: RA + setup + reconf + release.
        episode = (
            (ra_base + airtime.rrc_setup_s)
            + airtime.rrc_reconfiguration_s
            + airtime.rrc_release_s
        )
    else:
        # Contention: draw per device in directive order, exactly the
        # reference RNG stream (DA episode RA first, then the main RA).
        main_ra = np.empty(n, dtype=np.float64)
        ra_attempts = np.empty(n, dtype=np.float64)
        episode = np.zeros(n, dtype=np.float64)
        for i, d in enumerate(directives):
            coverage = COVERAGE_ORDER[int(coverage_codes[i])]
            if d.method is WakeMethod.DRX_ADAPTATION:
                episode[i] = timings.adaptation_episode_s(coverage, rng)
            outcome = timings.random_access.perform(coverage, rng)
            main_ra[i] = outcome.duration_s
            ra_attempts[i] = float(outcome.attempts)

    page_rx = np.where(is_ept, airtime.extended_paging_s, airtime.paging_message_s)
    wake_s = np.where(
        is_ept,
        _v_frames_to_seconds(connect_frame),
        _v_frames_to_seconds(page_frame) + airtime.paging_message_s,
    )
    ready = wake_s + main_ra + airtime.rrc_setup_s

    adapt_busy_end = np.zeros(n, dtype=np.int64)
    if np.any(is_da):
        adapt_busy_end[is_da] = v_frame_after_seconds(
            _v_frames_to_seconds(adapt_frame[is_da])
            + airtime.paging_message_s
            + episode[is_da]
        )

    # ------------------------------------------------------------------
    # Phase 2: realised transmission starts.
    # ------------------------------------------------------------------
    n_tx = len(plan.transmissions)
    nominal = np.empty(n_tx, dtype=np.float64)
    rate_bps = np.empty(n_tx, dtype=np.float64)
    for t in plan.transmissions:
        nominal[t.index] = frames_to_seconds(t.frame)
        rate_bps[t.index] = t.rate_bps
    latest_ready = np.full(n_tx, -np.inf)
    np.maximum.at(latest_ready, tx, ready)
    starts = np.maximum(nominal, latest_ready)

    # ------------------------------------------------------------------
    # Phase 3: per-device accounting over the horizon.
    # ------------------------------------------------------------------
    rx = plan.payload_bytes * 8.0 / rate_bps[tx]
    tail = np.where(
        is_da,
        timings.release_s() + timings.restore_s(),
        timings.release_s(),
    )
    start = starts[tx]
    main_end = start + rx + tail
    end_s = float(main_end.max()) if n else 0.0
    horizon = CampaignExecutor._resolve_horizon(horizon_frames, end_s)
    horizon_s = frames_to_seconds(horizon)

    late = main_end > horizon_s + 1e-9
    if np.any(late):
        first = int(np.argmax(late))
        raise SimulationError(
            f"horizon {horizon} frames ends before device "
            f"{int(dev[first])} finishes at {float(main_end[first]):.2f}s"
        )
    wait = start - ready
    if np.any(wait < -1e-9):  # pragma: no cover - guarded by start computation
        first = int(np.argmax(wait < -1e-9))
        raise SimulationError(f"negative wait for device {int(dev[first])}")
    wait = np.maximum(0.0, wait)

    # Idle-PO counts (the light-sleep grid), all integer arithmetic.
    main_busy_start = np.where(is_ept, connect_frame, page_frame)
    main_busy_end = v_frame_after_seconds(main_end)
    announce = plan.announce_frame
    po_count = _v_count_in(
        phases, periods, np.full(n, announce, dtype=np.int64), np.full(n, horizon, dtype=np.int64)
    ) - _v_count_in(phases, periods, main_busy_start, main_busy_end + 1)
    po_count = po_count - is_ept.astype(np.int64)  # extended page charged as RX
    if np.any(is_da):
        da = np.nonzero(is_da)[0]
        adapted_phase = _v_paging_phase(
            fleet.ue_ids[dev[da]],
            adapt_cycle[da],
            fleet.nb_numerators[dev[da]],
            fleet.nb_denominators[dev[da]],
        )
        da_count = _v_count_in(
            phases[da],
            periods[da],
            np.full(da.size, announce, dtype=np.int64),
            adapt_frame[da],
        )
        da_count += _v_count_in(
            adapted_phase,
            adapt_cycle[da],
            adapt_busy_end[da] + 1,
            main_busy_start[da],
        )
        da_count += _v_count_in(
            phases[da],
            periods[da],
            main_busy_end[da] + 1,
            np.full(da.size, horizon, dtype=np.int64),
        )
        po_count[da] = da_count

    # ------------------------------------------------------------------
    # The array-of-ledgers, accumulated in the reference's add order.
    # ------------------------------------------------------------------
    ledgers = LedgerArray(n)
    ra2 = np.where(is_da, ra_base, 0.0)
    ledgers.add(PowerState.PO_MONITOR, po_count * airtime.po_monitor_s)
    ledgers.add(
        PowerState.PAGING_RX,
        page_rx + np.where(is_da, airtime.paging_message_s, 0.0),
    )
    ledgers.add(PowerState.RANDOM_ACCESS, ra2 + main_ra)
    ledgers.add(
        PowerState.RRC_SIGNALLING,
        (np.where(is_da, episode - ra_base, 0.0) + airtime.rrc_setup_s) + tail,
    )
    ledgers.add(PowerState.CONNECTED_WAIT, wait)
    ledgers.add(PowerState.CONNECTED_RX, rx)
    # group_seconds left-folds in STATE_ORDER, float-for-float the same
    # sums the reference's UptimeLedger.totals produces.
    light = ledgers.group_seconds(StateGroup.LIGHT_SLEEP)
    connected = ledgers.group_seconds(StateGroup.CONNECTED)
    ledgers.add(
        PowerState.DEEP_SLEEP, np.maximum(0.0, (horizon_s - light) - connected)
    )

    if recorder is not None:
        _emit_events(
            recorder,
            plan,
            timings,
            horizon,
            energy_profile=energy_profile,
            dev=dev,
            tx=tx,
            is_da=is_da,
            is_ept=is_ept,
            page_frame=page_frame,
            connect_frame=connect_frame,
            adapt_frame=adapt_frame,
            episode=episode,
            ra_base=ra_base,
            main_ra=main_ra,
            ra_attempts=ra_attempts,
            ready=ready,
            wait=wait,
            rx=rx,
            po_count=po_count,
            page_rx=page_rx,
            main_busy_end=main_busy_end,
            starts=starts,
            rate_bps=rate_bps,
        )

    order = np.argsort(dev)
    columnar = FleetOutcomes(
        device_indices=dev[order],
        transmission_indices=tx[order],
        ledgers=ledgers.take(order),
        ready_s=ready[order],
        wait_s=wait[order],
        updated_s=(start + rx)[order],
    )
    return CampaignResult(
        plan=plan,
        horizon_frames=horizon,
        columnar=columnar,
        actual_start_s=tuple(float(starts[t.index]) for t in plan.transmissions),
        energy_profile=energy_profile,
    )


def _emit_events(
    recorder: "EventLogRecorder",
    plan: MulticastPlan,
    timings: ProcedureTimings,
    horizon: int,
    *,
    energy_profile: EnergyProfile,
    dev: np.ndarray,
    tx: np.ndarray,
    is_da: np.ndarray,
    is_ept: np.ndarray,
    page_frame: np.ndarray,
    connect_frame: np.ndarray,
    adapt_frame: np.ndarray,
    episode: np.ndarray,
    ra_base: np.ndarray,
    main_ra: np.ndarray,
    ra_attempts: Optional[np.ndarray],
    ready: np.ndarray,
    wait: np.ndarray,
    rx: np.ndarray,
    po_count: np.ndarray,
    page_rx: np.ndarray,
    main_busy_end: np.ndarray,
    starts: np.ndarray,
    rate_bps: np.ndarray,
) -> None:
    """Emit the campaign's event rows as whole-fleet blocks.

    Every frame/duration here is the exact float the accounting above
    used, so the log round-trips bit-identically through the STRICT
    replayer regardless of which executor emitted it.
    """
    from repro.sim.events import EventKind
    from repro.sim.eventlog import profile_meta

    airtime = timings.airtime
    recorder.set_meta(
        emitter="columnar",
        energy_profile=profile_meta(energy_profile),
        mechanism=plan.mechanism,
        n_devices=int(dev.size),
        n_transmissions=len(plan.transmissions),
        payload_bytes=plan.payload_bytes,
        announce_frame=plan.announce_frame,
        horizon_frames=int(horizon),
        po_monitor_s=airtime.po_monitor_s,
        paging_message_s=airtime.paging_message_s,
        extended_paging_s=airtime.extended_paging_s,
        rrc_setup_s=airtime.rrc_setup_s,
        release_s=timings.release_s(),
        restore_s=timings.restore_s(),
    )
    announce = plan.announce_frame
    recorder.emit_block(
        EventKind.PO_MONITOR, announce, dev, tx, po_count.astype(np.float64)
    )
    normal = ~is_ept
    if np.any(normal):
        recorder.emit_block(
            EventKind.PAGE, page_frame[normal], dev[normal], tx[normal], page_rx[normal]
        )
    if np.any(is_ept):
        recorder.emit_block(
            EventKind.EXTENDED_PAGE,
            page_frame[is_ept],
            dev[is_ept],
            tx[is_ept],
            page_rx[is_ept],
        )
        recorder.emit_block(
            EventKind.T322_EXPIRY, connect_frame[is_ept], dev[is_ept], tx[is_ept]
        )
    if np.any(is_da):
        recorder.emit_block(
            EventKind.ADAPTATION_PAGE,
            adapt_frame[is_da],
            dev[is_da],
            tx[is_da],
            episode[is_da],
            ra_base[is_da],
        )
    recorder.emit_block(
        EventKind.CONNECTION_READY, v_frame_after_seconds(ready), dev, tx, main_ra, ready
    )
    if ra_attempts is not None:
        recorder.emit_block(
            EventKind.RA_ATTEMPT,
            v_frame_after_seconds(ready),
            dev,
            tx,
            ra_attempts,
            main_ra,
        )
    recorder.emit_block(EventKind.DEVICE_DONE, main_busy_end, dev, tx, wait, rx)

    n_tx = starts.size
    tx_index = np.arange(n_tx, dtype=np.int64)
    nominal_frame = np.empty(n_tx, dtype=np.int64)
    for t in plan.transmissions:
        nominal_frame[t.index] = t.frame
    end_tx = starts + plan.payload_bytes * 8.0 / rate_bps
    recorder.emit_block(
        EventKind.TX_START, nominal_frame, -1, tx_index, starts, rate_bps
    )
    recorder.emit_block(
        EventKind.TX_END, v_frame_after_seconds(end_tx), -1, tx_index, end_tx
    )
