"""A minimal deterministic discrete-event engine.

A binary-heap scheduler with a strict total order on events:
``(time, priority, insertion sequence)``. Ties at identical times are
resolved first by an explicit priority (e.g. a transmission must start
after the last CONNECTION_READY at the same instant) and then by
insertion order, making runs bit-reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import Event

#: A queue entry: (time, priority, sequence, event, callback).
_Entry = Tuple[float, int, int, Event, Callable[[Event], None]]


class Simulator:
    """The event loop."""

    def __init__(self, trace: bool = False) -> None:
        """``trace=True`` records every executed event in ``self.trace``."""
        self._queue: List[_Entry] = []
        self._seq = 0
        self._now = 0.0
        self._tracing = trace
        self.trace: List[Event] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def schedule(
        self,
        event: Event,
        callback: Callable[[Event], None],
        priority: int = 0,
    ) -> None:
        """Queue ``event`` to run ``callback`` at ``event.time_s``."""
        if event.time_s < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule {event.kind.value} at {event.time_s:.6f}s "
                f"in the past (now={self._now:.6f}s)"
            )
        heapq.heappush(
            self._queue, (event.time_s, priority, self._seq, event, callback)
        )
        self._seq += 1

    def run(self, until_s: Optional[float] = None) -> int:
        """Process events (optionally only up to ``until_s``).

        Returns the number of events executed. Events scheduled beyond
        ``until_s`` stay in the queue (the clock does not advance past
        them), so a later ``run`` call can continue.
        """
        executed = 0
        while self._queue:
            time_s, _, _, event, callback = self._queue[0]
            if until_s is not None and time_s > until_s:
                break
            heapq.heappop(self._queue)
            self._now = time_s
            if self._tracing:
                self.trace.append(event)
            callback(event)
            executed += 1
        return executed
