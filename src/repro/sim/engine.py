"""A minimal deterministic discrete-event engine.

A binary-heap scheduler with a strict total order on events:
``(time, priority, insertion sequence)``. Ties at identical times are
resolved first by an explicit priority (e.g. a transmission must start
after the last CONNECTION_READY at the same instant) and then by
insertion order, making runs bit-reproducible.

Scheduling returns an integer handle; :meth:`Simulator.cancel` removes
a not-yet-fired event (lazily — the heap entry is tombstoned and
skipped when it surfaces), which is what lets the campaign service
retire transmissions when devices leave and reschedule them on replans.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.sim.events import Event

#: A queue entry: (time, priority, sequence, event, callback).
_Entry = Tuple[float, int, int, Event, Callable[[Event], None]]


class Simulator:
    """The event loop."""

    def __init__(self, trace: bool = False) -> None:
        """``trace=True`` records every executed event in ``self.trace``."""
        self._queue: List[_Entry] = []
        self._seq = 0
        self._now = 0.0
        self._tracing = trace
        self._live: Set[int] = set()
        self.trace: List[Event] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (cancelled tombstones excluded)."""
        return len(self._live)

    def schedule(
        self,
        event: Event,
        callback: Callable[[Event], None],
        priority: int = 0,
    ) -> int:
        """Queue ``event`` to run ``callback`` at ``event.time_s``.

        Returns a handle accepted by :meth:`cancel`.
        """
        if event.time_s < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule {event.kind.value} at {event.time_s:.6f}s "
                f"in the past (now={self._now:.6f}s)"
            )
        handle = self._seq
        heapq.heappush(
            self._queue, (event.time_s, priority, handle, event, callback)
        )
        self._seq += 1
        self._live.add(handle)
        return handle

    def cancel(self, handle: int) -> bool:
        """Cancel the pending event behind ``handle``.

        Returns True when the event was still pending and is now
        guaranteed never to fire; False when there is nothing left to
        cancel — the event already fired, was already cancelled, or the
        handle was never issued. The heap entry stays behind as a
        tombstone and is discarded when it reaches the front, so
        cancellation is O(1) and never perturbs the order of the
        surviving events.
        """
        if handle not in self._live:
            return False
        self._live.discard(handle)
        return True

    def run(self, until_s: Optional[float] = None) -> int:
        """Process events (optionally only up to ``until_s``).

        Returns the number of events executed. Events scheduled beyond
        ``until_s`` stay in the queue (the clock does not advance past
        them), so a later ``run`` call can continue. Cancelled events
        are skipped without advancing the clock.
        """
        executed = 0
        while self._queue:
            time_s, _, seq, event, callback = self._queue[0]
            if seq not in self._live:
                heapq.heappop(self._queue)  # tombstone of a cancelled event
                continue
            if until_s is not None and time_s > until_s:
                break
            heapq.heappop(self._queue)
            self._live.discard(seq)
            self._now = time_s
            if self._tracing:
                self.trace.append(event)
            callback(event)
            executed += 1
        return executed

    def step(self) -> int:
        """Execute at most one event; returns the number executed (0/1).

        The campaign service's async surface pumps the engine one event
        at a time so concurrently awaited campaigns interleave while the
        execution order stays exactly the heap order.
        """
        while self._queue:
            time_s, _, seq, event, callback = self._queue[0]
            heapq.heappop(self._queue)
            if seq not in self._live:
                continue
            self._live.discard(seq)
            self._now = time_s
            if self._tracing:
                self.trace.append(event)
            callback(event)
            return 1
        return 0
