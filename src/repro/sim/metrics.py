"""Campaign results and the paper's comparison metrics.

A campaign result holds one :class:`~repro.energy.UptimeLedger` per
device plus the realised transmission times. The fleet-level summary
exposes exactly what Fig. 6 plots — relative light-sleep and
connected-mode uptime increases over a unicast baseline evaluated on
the *same* fleet over the *same* horizon — and what Fig. 7 plots (the
transmission count).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Tuple

import numpy as np

from repro.core.plan import MulticastPlan
from repro.energy.ledger import RelativeIncrease, UptimeLedger, UptimeTotals
from repro.energy.profiles import DEFAULT_PROFILE, EnergyProfile
from repro.errors import SimulationError


@dataclass(frozen=True)
class DeviceOutcome:
    """One device's campaign outcome.

    Attributes:
        device_index: fleet index.
        transmission_index: transmission that served the device.
        ledger: time spent per power state over the whole horizon.
        ready_s: when the device was connected and ready for the data.
        wait_s: connected idle time until its transmission actually began.
        updated_s: when the device finished receiving the payload.
    """

    device_index: int
    transmission_index: int
    ledger: UptimeLedger
    ready_s: float
    wait_s: float
    updated_s: float

    @property
    def totals(self) -> UptimeTotals:
        """The device's uptime split."""
        return self.ledger.totals


@dataclass(frozen=True)
class FleetSummary:
    """Fleet-aggregated uptime (the sums Fig. 6 ratios are built from)."""

    light_sleep_s: float
    connected_s: float
    sleep_s: float
    energy_mj: float

    @property
    def totals(self) -> UptimeTotals:
        """The aggregate as an :class:`UptimeTotals`."""
        return UptimeTotals(
            light_sleep_s=self.light_sleep_s,
            connected_s=self.connected_s,
            sleep_s=self.sleep_s,
        )


@dataclass(frozen=True)
class CampaignResult:
    """Everything measured from executing one plan on one fleet."""

    plan: MulticastPlan
    horizon_frames: int
    outcomes: Tuple[DeviceOutcome, ...]
    actual_start_s: Tuple[float, ...]
    energy_profile: EnergyProfile = DEFAULT_PROFILE

    @property
    def mechanism(self) -> str:
        """Name of the mechanism that produced the plan."""
        return self.plan.mechanism

    @property
    def n_transmissions(self) -> int:
        """The paper's bandwidth-utilisation proxy."""
        return self.plan.n_transmissions

    @cached_property
    def fleet(self) -> FleetSummary:
        """Fleet-level sums across all devices."""
        light = connected = sleep = energy = 0.0
        for outcome in self.outcomes:
            totals = outcome.totals
            light += totals.light_sleep_s
            connected += totals.connected_s
            sleep += totals.sleep_s
            energy += outcome.ledger.energy_mj(self.energy_profile)
        return FleetSummary(
            light_sleep_s=light,
            connected_s=connected,
            sleep_s=sleep,
            energy_mj=energy,
        )

    @property
    def mean_wait_s(self) -> float:
        """Mean connected wait before the data started (~TI/2 for the
        windowed mechanisms, 0 for unicast)."""
        return float(np.mean([o.wait_s for o in self.outcomes]))

    def relative_uptime_increase(
        self, baseline: "CampaignResult"
    ) -> RelativeIncrease:
        """Fig. 6's metric: fleet uptime increase over ``baseline``.

        The baseline must cover the same fleet over the same horizon,
        otherwise light-sleep PO counts are not comparable.
        """
        if len(baseline.outcomes) != len(self.outcomes):
            raise SimulationError(
                "baseline covers a different fleet "
                f"({len(baseline.outcomes)} vs {len(self.outcomes)} devices)"
            )
        if baseline.horizon_frames != self.horizon_frames:
            raise SimulationError(
                "baseline horizon differs "
                f"({baseline.horizon_frames} vs {self.horizon_frames} frames); "
                "evaluate the baseline with horizon_frames="
                f"{self.horizon_frames}"
            )
        return self.fleet.totals.relative_increase_over(baseline.fleet.totals)

    def energy_increase_over(self, baseline: "CampaignResult") -> float:
        """Fractional fleet energy increase over ``baseline``."""
        base = baseline.fleet.energy_mj
        if base <= 0:
            raise SimulationError("baseline energy is zero")
        return (self.fleet.energy_mj - base) / base
