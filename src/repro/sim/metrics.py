"""Campaign results and the paper's comparison metrics.

A campaign result holds the per-device uptime accounting plus the
realised transmission times. Two backings exist:

* **row form** — a tuple of :class:`DeviceOutcome` objects (produced by
  the per-device reference executor and the event-driven replay);
* **columnar form** — a :class:`FleetOutcomes` bundle of parallel NumPy
  arrays plus a :class:`~repro.energy.ledger.LedgerArray` (produced by
  the vectorised executor).

Fleet-level summaries (:attr:`CampaignResult.fleet`,
:attr:`CampaignResult.mean_wait_s`) reduce columnar results with array
arithmetic; per-device :class:`DeviceOutcome` views are materialised
lazily and only when a consumer actually iterates ``outcomes``. The
fleet-level summary exposes exactly what Fig. 6 plots — relative
light-sleep and connected-mode uptime increases over a unicast baseline
evaluated on the *same* fleet over the *same* horizon — and what Fig. 7
plots (the transmission count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.plan import MulticastPlan
from repro.energy.ledger import (
    LedgerArray,
    RelativeIncrease,
    UptimeLedger,
    UptimeTotals,
)
from repro.energy.profiles import DEFAULT_PROFILE, EnergyProfile
from repro.energy.states import StateGroup
from repro.errors import SimulationError


@dataclass(frozen=True)
class DeviceOutcome:
    """One device's campaign outcome.

    Attributes:
        device_index: fleet index.
        transmission_index: transmission that served the device.
        ledger: time spent per power state over the whole horizon.
        ready_s: when the device was connected and ready for the data.
        wait_s: connected idle time until its transmission actually began.
        updated_s: when the device finished receiving the payload.
    """

    device_index: int
    transmission_index: int
    ledger: UptimeLedger
    ready_s: float
    wait_s: float
    updated_s: float

    @property
    def totals(self) -> UptimeTotals:
        """The device's uptime split."""
        return self.ledger.totals


@dataclass(frozen=True, eq=False)
class FleetOutcomes:
    """Columnar campaign outcomes: one array column per device.

    All arrays are parallel and sorted by ``device_indices``. This is the
    vectorised executor's native output — no per-device Python objects
    exist until :meth:`outcome_at` materialises one. ``eq=False``: a
    generated ``__eq__`` over ndarray fields would raise on comparison;
    identity semantics are the honest contract here.
    """

    device_indices: np.ndarray
    transmission_indices: np.ndarray
    ledgers: LedgerArray
    ready_s: np.ndarray
    wait_s: np.ndarray
    updated_s: np.ndarray

    def __post_init__(self) -> None:
        n = self.device_indices.size
        for name in ("transmission_indices", "ready_s", "wait_s", "updated_s"):
            if getattr(self, name).size != n:
                raise SimulationError(f"column {name} length differs from devices")
        if len(self.ledgers) != n:
            raise SimulationError("ledger array width differs from devices")

    def __len__(self) -> int:
        return self.device_indices.size

    def outcome_at(self, column: int) -> DeviceOutcome:
        """Materialise one device's row-form :class:`DeviceOutcome`."""
        return DeviceOutcome(
            device_index=int(self.device_indices[column]),
            transmission_index=int(self.transmission_indices[column]),
            ledger=self.ledgers.ledger_at(column),
            ready_s=float(self.ready_s[column]),
            wait_s=float(self.wait_s[column]),
            updated_s=float(self.updated_s[column]),
        )


@dataclass(frozen=True)
class FleetSummary:
    """Fleet-aggregated uptime (the sums Fig. 6 ratios are built from)."""

    light_sleep_s: float
    connected_s: float
    sleep_s: float
    energy_mj: float

    @property
    def totals(self) -> UptimeTotals:
        """The aggregate as an :class:`UptimeTotals`."""
        return UptimeTotals(
            light_sleep_s=self.light_sleep_s,
            connected_s=self.connected_s,
            sleep_s=self.sleep_s,
        )


class CampaignResult:
    """Everything measured from executing one plan on one fleet.

    Construct with either ``outcomes`` (row form) or ``columnar``
    (array form) — exactly one. The public surface is identical either
    way; ``outcomes`` on a columnar result materialises lazily.
    """

    def __init__(
        self,
        plan: MulticastPlan,
        horizon_frames: int,
        outcomes: Optional[Tuple[DeviceOutcome, ...]] = None,
        actual_start_s: Tuple[float, ...] = (),
        energy_profile: EnergyProfile = DEFAULT_PROFILE,
        columnar: Optional[FleetOutcomes] = None,
    ) -> None:
        if (outcomes is None) == (columnar is None):
            raise SimulationError(
                "a result needs exactly one of outcomes= or columnar="
            )
        self.plan = plan
        self.horizon_frames = horizon_frames
        self.actual_start_s = tuple(actual_start_s)
        self.energy_profile = energy_profile
        self._outcomes = tuple(outcomes) if outcomes is not None else None
        self._columnar = columnar
        self._fleet: Optional[FleetSummary] = None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def columnar(self) -> Optional[FleetOutcomes]:
        """The columnar backing, if this result has one."""
        return self._columnar

    @property
    def n_devices(self) -> int:
        """Number of devices covered (without materialising outcomes)."""
        if self._outcomes is not None:
            return len(self._outcomes)
        assert self._columnar is not None
        return len(self._columnar)

    @property
    def outcomes(self) -> Tuple[DeviceOutcome, ...]:
        """Per-device outcomes, sorted by device index.

        Columnar results materialise (and cache) the row form on first
        access; fleet summaries never need this.
        """
        if self._outcomes is None:
            assert self._columnar is not None
            self._outcomes = tuple(
                self._columnar.outcome_at(i) for i in range(len(self._columnar))
            )
        return self._outcomes

    @property
    def mechanism(self) -> str:
        """Name of the mechanism that produced the plan."""
        return self.plan.mechanism

    @property
    def n_transmissions(self) -> int:
        """The paper's bandwidth-utilisation proxy."""
        return self.plan.n_transmissions

    # ------------------------------------------------------------------
    # Fleet aggregates
    # ------------------------------------------------------------------
    @property
    def fleet(self) -> FleetSummary:
        """Fleet-level sums across all devices (cached).

        Columnar results reduce with array arithmetic; row results loop.
        """
        if self._fleet is not None:
            return self._fleet
        if self._columnar is not None:
            ledgers = self._columnar.ledgers
            summary = FleetSummary(
                light_sleep_s=float(
                    ledgers.group_seconds(StateGroup.LIGHT_SLEEP).sum()
                ),
                connected_s=float(
                    ledgers.group_seconds(StateGroup.CONNECTED).sum()
                ),
                sleep_s=float(ledgers.group_seconds(StateGroup.SLEEP).sum()),
                energy_mj=float(ledgers.energy_mj(self.energy_profile).sum()),
            )
        else:
            light = connected = sleep = energy = 0.0
            for outcome in self.outcomes:
                totals = outcome.totals
                light += totals.light_sleep_s
                connected += totals.connected_s
                sleep += totals.sleep_s
                energy += outcome.ledger.energy_mj(self.energy_profile)
            summary = FleetSummary(
                light_sleep_s=light,
                connected_s=connected,
                sleep_s=sleep,
                energy_mj=energy,
            )
        self._fleet = summary
        return summary

    @property
    def mean_wait_s(self) -> float:
        """Mean connected wait before the data started (~TI/2 for the
        windowed mechanisms, 0 for unicast)."""
        if self.n_devices == 0:
            raise SimulationError(
                "mean_wait_s is undefined for a result with no outcomes"
            )
        if self._columnar is not None:
            return float(self._columnar.wait_s.mean())
        return float(np.mean([o.wait_s for o in self.outcomes]))

    def relative_uptime_increase(
        self, baseline: "CampaignResult"
    ) -> RelativeIncrease:
        """Fig. 6's metric: fleet uptime increase over ``baseline``.

        The baseline must cover the same fleet over the same horizon,
        otherwise light-sleep PO counts are not comparable.
        """
        if baseline.n_devices != self.n_devices:
            raise SimulationError(
                "baseline covers a different fleet "
                f"({baseline.n_devices} vs {self.n_devices} devices)"
            )
        if baseline.horizon_frames != self.horizon_frames:
            raise SimulationError(
                "baseline horizon differs "
                f"({baseline.horizon_frames} vs {self.horizon_frames} frames); "
                "evaluate the baseline with horizon_frames="
                f"{self.horizon_frames}"
            )
        return self.fleet.totals.relative_increase_over(baseline.fleet.totals)

    def energy_increase_over(self, baseline: "CampaignResult") -> float:
        """Fractional fleet energy increase over ``baseline``."""
        base = baseline.fleet.energy_mj
        if base <= 0:
            raise SimulationError("baseline energy is zero")
        return (self.fleet.energy_mj - base) / base

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        form = "columnar" if self._columnar is not None else "rows"
        return (
            f"CampaignResult(mechanism={self.mechanism!r}, "
            f"n={self.n_devices}, horizon={self.horizon_frames}, {form})"
        )
