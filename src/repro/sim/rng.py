"""Deterministic random-number management.

Every stochastic component takes an explicit
:class:`numpy.random.Generator`. The helpers here derive independent,
reproducible child generators from a root seed using NumPy's
:class:`~numpy.random.SeedSequence` spawning, so Monte-Carlo runs are
statistically independent *and* bit-reproducible across machines.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


def generator_for(seed: int) -> np.random.Generator:
    """A fresh PCG64 generator for ``seed``."""
    if seed < 0:
        raise ConfigurationError(f"seed must be non-negative, got {seed}")
    return np.random.default_rng(seed)


def spawn_generators(seed: int, n: int) -> List[np.random.Generator]:
    """``n`` independent child generators derived from ``seed``."""
    if seed < 0:
        raise ConfigurationError(f"seed must be non-negative, got {seed}")
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    children = np.random.SeedSequence(seed).spawn(n)
    return [np.random.default_rng(child) for child in children]
