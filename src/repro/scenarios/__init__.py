"""Declarative scenario registry and stress-sweep subsystem.

The paper's evaluation varies one axis at a time; this package makes
whole deployment regimes first-class:

* :class:`~repro.scenarios.spec.ScenarioSpec` — one frozen dataclass
  naming fleet shape, coverage mix, RACH contention, loss/repair regime
  and campaign shape;
* a named registry of built-in scenarios spanning dense-urban,
  deep-coverage-heavy, contention-storm, lossy-link-repair and
  mixed-traffic regimes (:mod:`~repro.scenarios.registry`);
* a sweep runner expanding scenario x axis grids through the parallel
  Monte-Carlo backend and columnar executor
  (:mod:`~repro.scenarios.sweep`);
* a golden-metrics harness pinning every registered scenario's headline
  metrics to committed JSON (:mod:`~repro.scenarios.golden`).

CLI: ``python -m repro scenarios list|run|sweep``.
"""

from repro.scenarios.golden import (
    GOLDEN_PATH,
    GOLDEN_RUNLOG_DIR,
    compute_golden_metrics,
    diff_golden,
    drifted_scenarios,
    golden_event_diff,
    golden_runlog_path,
    golden_spec,
    load_golden,
    record_golden_runlog,
    write_golden,
    write_golden_runlogs,
)
from repro.scenarios.record import (
    RecordedRun,
    record_run,
    rerecord,
    runlog_headline_metrics,
    verify_runlog,
)
from repro.scenarios.registry import (
    all_scenarios,
    register_scenario,
    scenario,
    scenario_names,
)
from repro.scenarios.runner import (
    HEADLINE_METRICS,
    headline_means,
    run_log_filename,
    run_scenario,
    scenario_run,
    scenario_table,
)
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.sweep import (
    AXIS_FIELDS,
    DEFAULT_AXES,
    SweepAxis,
    SweepCell,
    expand_grid,
    parse_axis,
    run_sweep,
    sweep_table,
)

__all__ = [
    "ScenarioSpec",
    "register_scenario",
    "scenario",
    "scenario_names",
    "all_scenarios",
    "scenario_run",
    "run_scenario",
    "run_log_filename",
    "headline_means",
    "scenario_table",
    "HEADLINE_METRICS",
    "RecordedRun",
    "record_run",
    "rerecord",
    "runlog_headline_metrics",
    "verify_runlog",
    "SweepAxis",
    "SweepCell",
    "AXIS_FIELDS",
    "DEFAULT_AXES",
    "parse_axis",
    "expand_grid",
    "run_sweep",
    "sweep_table",
    "golden_spec",
    "compute_golden_metrics",
    "load_golden",
    "write_golden",
    "diff_golden",
    "drifted_scenarios",
    "golden_event_diff",
    "golden_runlog_path",
    "record_golden_runlog",
    "write_golden_runlogs",
    "GOLDEN_PATH",
    "GOLDEN_RUNLOG_DIR",
]
