"""Scenario execution: one spec -> aggregated metrics.

One Monte-Carlo run of a scenario samples a fleet from the spec's
mixture and coverage mix, plans the campaign with the spec's mechanism,
executes the plan (columnar fast path by default; the per-device row
path is kept selectable as the equivalence oracle), and simulates the
segment-loss/repair rounds for the delivered image. The run function is
a module-level picklable callable, so every scenario fans out through
either Monte-Carlo backend (``serial`` or ``process``) unchanged, and
both backends produce bit-identical metric arrays.
"""

from __future__ import annotations

from functools import partial
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.reporting import Table
from repro.multicast.coordination import CoordinationEntity, partition_fleet
from repro.multicast.reliability import simulate_repair_rounds
from repro.phy.coverage import CoverageClass
from repro.scenarios.spec import ScenarioSpec
from repro.sim.eventlog import (
    EventLogRecorder,
    RunLog,
    repair_round_rows,
)
from repro.sim.executor import CampaignExecutor
from repro.sim.montecarlo import MonteCarlo, RunStatistics
from repro.sim.parallel import ResultCache
from repro.timebase import format_bytes
from repro.traffic.generator import generate_fleet

#: The metrics the golden harness pins, in report order.
HEADLINE_METRICS = (
    "transmissions",
    "mean_wait_s",
    "uptime_s",
    "energy_mj",
    "segments_sent",
)


def _run_meta(spec: ScenarioSpec, run_index: int) -> Dict[str, object]:
    """The run key a recorded :class:`RunLog` carries."""
    return {
        "scenario": spec.name,
        "fingerprint": spec.fingerprint(),
        "seed": spec.seed,
        "run_index": int(run_index),
        "mechanism": spec.mechanism,
        "n_devices": spec.n_devices,
        "n_cells": spec.cells.n_cells,
    }


def _multi_cell_run(
    rng: np.random.Generator,
    spec: ScenarioSpec,
    fleet,
    columnar: bool,
    run_index: int = 0,
    recording: Optional[List[RunLog]] = None,
) -> Dict[str, float]:
    """One Monte-Carlo run of a multi-cell scenario.

    The fleet is partitioned by attachment (uniform or the spec's cell
    weights), every cell's campaign is planned and executed with its own
    child generator (derived from one rollout seed drawn from ``rng``,
    so the run stays a pure function of its generator), and the repair
    rounds run per cell — each eNB transmits its own copy of the image.
    """
    cells = partition_fleet(
        fleet, spec.cells.n_cells, rng, weights=spec.cells.weights
    )
    executor = CampaignExecutor(timings=spec.timings(), columnar=columnar)
    entity = CoordinationEntity(spec.mechanism_obj(), executor=executor)
    rollout_seed = int(rng.integers(0, 2**32))
    report = entity.rollout(
        cells,
        spec.image(),
        spec.planning_context(),
        seed=rollout_seed,
        record_events=recording is not None,
    )
    repairs = [
        simulate_repair_rounds(
            spec.image(), campaign.fleet_size, spec.reliability(), rng
        )
        for campaign in report.campaigns
    ]
    if recording is not None:
        cell_logs = {}
        for campaign, repair in zip(report.campaigns, repairs):
            log = campaign.event_log.with_appended(
                repair_round_rows(
                    repair.segments_per_round, campaign.result.horizon_frames
                )
            )
            cell_logs[campaign.cell_id] = log
        recording.append(
            RunLog(meta=_run_meta(spec, run_index), cells=cell_logs)
        )

    histogram = fleet.coverage_histogram()
    deep = histogram[CoverageClass.ROBUST] + histogram[CoverageClass.EXTREME]
    battery = spec.battery()
    light_sleep_s = report.total_light_sleep_s
    connected_s = report.total_connected_s
    energy_mj = report.total_energy_mj
    return {
        "transmissions": float(report.total_transmissions),
        "largest_group": float(report.largest_group),
        "mean_wait_s": report.mean_wait_s,
        "light_sleep_s": light_sleep_s,
        "connected_s": connected_s,
        "uptime_s": light_sleep_s + connected_s,
        "energy_mj": energy_mj,
        "battery_drain_ppm": (
            battery.fraction_consumed(energy_mj / spec.n_devices) * 1e6
        ),
        "segments_sent": float(sum(r.segments_sent for r in repairs)),
        "repair_rounds": float(max(r.rounds for r in repairs)),
        "delivered_fraction": (
            sum(r.devices_complete for r in repairs) / spec.n_devices
        ),
        "deep_coverage_share": deep / spec.n_devices,
        "n_cells": float(report.n_cells),
    }


def scenario_run(
    rng: np.random.Generator,
    _run_index: int,
    spec: ScenarioSpec,
    columnar: bool = True,
    recording: Optional[List[RunLog]] = None,
) -> Dict[str, float]:
    """One Monte-Carlo run of ``spec`` (picklable; process-pool safe).

    When ``recording`` is a list, a :class:`~repro.sim.eventlog.RunLog`
    for the run (one event log per cell, repair rounds appended) is
    appended to it. Recording works only with in-process execution —
    a process-pool worker would append to its own copy of the list.
    """
    fleet = generate_fleet(
        spec.n_devices,
        spec.mixture_obj(),
        rng,
        coverage_mix=spec.coverage,
        battery=spec.battery(),
    )
    if spec.cells.is_multi_cell:
        return _multi_cell_run(
            rng, spec, fleet, columnar, run_index=_run_index, recording=recording
        )
    mechanism = spec.mechanism_obj()
    plan = mechanism.plan(fleet, spec.planning_context(), rng)
    executor = CampaignExecutor(timings=spec.timings(), columnar=columnar)
    recorder = EventLogRecorder() if recording is not None else None
    result = executor.execute(fleet, plan, rng=rng, recorder=recorder)
    repair = simulate_repair_rounds(
        spec.image(), spec.n_devices, spec.reliability(), rng
    )
    if recorder is not None:
        log = recorder.finalize(cell=0).with_appended(
            repair_round_rows(repair.segments_per_round, result.horizon_frames)
        )
        recording.append(
            RunLog(meta=_run_meta(spec, _run_index), cells={0: log})
        )

    summary = result.fleet
    histogram = fleet.coverage_histogram()
    deep = histogram[CoverageClass.ROBUST] + histogram[CoverageClass.EXTREME]
    battery = spec.battery()
    return {
        "transmissions": float(result.n_transmissions),
        "largest_group": float(
            max(t.group_size for t in plan.transmissions)
        ),
        "mean_wait_s": result.mean_wait_s,
        "light_sleep_s": summary.light_sleep_s,
        "connected_s": summary.connected_s,
        "uptime_s": summary.light_sleep_s + summary.connected_s,
        "energy_mj": summary.energy_mj,
        "battery_drain_ppm": (
            battery.fraction_consumed(summary.energy_mj / spec.n_devices) * 1e6
        ),
        "segments_sent": float(repair.segments_sent),
        "repair_rounds": float(repair.rounds),
        "delivered_fraction": repair.devices_complete / spec.n_devices,
        "deep_coverage_share": deep / spec.n_devices,
    }


def run_scenario(
    spec: ScenarioSpec,
    *,
    backend: str = "serial",
    workers: Optional[int] = None,
    n_runs: Optional[int] = None,
    seed: Optional[int] = None,
    columnar: bool = True,
    cache: Optional[ResultCache] = None,
    record_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, RunStatistics]:
    """Run ``spec`` through the Monte-Carlo harness and aggregate.

    ``backend``/``workers`` select serial or process-pool execution
    (bit-identical either way); ``columnar=False`` drops to the
    per-device reference executor (the equivalence oracle the
    integration tests pin the fast path to). ``record_dir`` turns on
    event-log recording: every run writes one
    :class:`~repro.sim.eventlog.RunLog` ``.npz`` into the directory.
    Recording is observability on top of an unchanged simulation —
    metrics are bit-identical with and without it — but it requires the
    serial backend (logs cannot cross a process pool through a shared
    list) and an uncached harness (a cache hit skips the run function,
    so nothing would be recorded).
    """
    root_seed = spec.seed if seed is None else seed
    recording: Optional[List[RunLog]] = None
    if record_dir is not None:
        if backend != "serial":
            raise ConfigurationError(
                f"recording requires backend='serial', got {backend!r}"
            )
        if cache is not None:
            raise ConfigurationError(
                "recording requires an uncached run (cache hits skip "
                "execution, so no events would be recorded)"
            )
        recording = []
    harness = MonteCarlo(
        n_runs=spec.n_runs if n_runs is None else n_runs,
        seed=root_seed,
        backend=backend,
        workers=workers,
        cache=cache,
    )
    stats = harness.run(
        partial(
            scenario_run, spec=spec, columnar=columnar, recording=recording
        ),
        cache_tag=f"scenario/{spec.name}",
        config_fingerprint=spec.fingerprint(),
    )
    if recording is not None:
        directory = Path(record_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for runlog in recording:
            runlog.meta["seed"] = root_seed
            runlog.save(
                directory
                / run_log_filename(
                    spec.name, spec.fingerprint(), runlog.meta["run_index"]
                )
            )
    return stats


def run_log_filename(scenario: str, fingerprint: str, run_index: int) -> str:
    """Canonical ``.npz`` filename of one recorded run.

    The short fingerprint keeps sweep variants of the same scenario
    (same name, different axis values) from overwriting each other.
    """
    return f"{scenario}-{fingerprint[:8]}-run{int(run_index):03d}.npz"


def headline_means(stats: Dict[str, RunStatistics]) -> Dict[str, float]:
    """The pinned headline metrics (means over runs) of one scenario."""
    return {name: stats[name].mean for name in HEADLINE_METRICS}


def scenario_table(
    results: Dict[str, Dict[str, RunStatistics]], runs_label: str
) -> Table:
    """Tabulate per-scenario headline metrics for the CLI."""
    rows: List[Tuple[str, ...]] = []
    for name, stats in results.items():
        rows.append(
            (
                name,
                f"{stats['transmissions'].mean:.1f}",
                f"{stats['mean_wait_s'].mean:.2f}s",
                f"{stats['uptime_s'].mean:.0f}s",
                f"{stats['energy_mj'].mean / 1000:.1f}J",
                f"{stats['segments_sent'].mean:.0f}",
                f"{stats['delivered_fraction'].mean * 100:.1f}%",
            )
        )
    return Table(
        title=f"Scenario campaign metrics ({runs_label} runs each)",
        headers=(
            "scenario",
            "transmissions",
            "mean wait",
            "fleet uptime",
            "fleet energy",
            "segments sent",
            "delivered",
        ),
        rows=tuple(rows),
        notes=(
            "uptime = fleet light-sleep + connected seconds over the "
            "campaign horizon; segments sent includes NACK-driven repair "
            "rounds.",
        ),
    )


def format_spec_row(spec: ScenarioSpec) -> Tuple[str, ...]:
    """One ``scenarios list`` table row."""
    fields = spec.summary_fields()
    return (
        spec.name,
        str(fields["devices"]),
        str(fields["mixture"]),
        str(fields["mechanism"]),
        str(fields["grouping"]),
        format_bytes(int(fields["payload"])),
        f"{fields['collision']:.2f}",
        f"{fields['loss']:.2f}",
        str(fields["cells"]),
        spec.description,
    )
