"""Scenario execution: one spec -> aggregated metrics.

One Monte-Carlo run of a scenario samples a fleet from the spec's
mixture and coverage mix, plans the campaign with the spec's mechanism,
executes the plan (columnar fast path by default; the per-device row
path is kept selectable as the equivalence oracle), and simulates the
segment-loss/repair rounds for the delivered image. The run function is
a module-level picklable callable, so every scenario fans out through
any Monte-Carlo backend (``serial``, ``process`` or ``fused``)
unchanged, and all backends produce bit-identical metric arrays.

The ``fused`` backend decomposes each multi-cell run into work-queue
tasks (:mod:`repro.sim.dispatch`): a *prologue* task generates the
fleet, draws the cell attachments and the rollout seed — exactly the
draws the serial run makes, in the same order — publishes the fleet's
columns (plus the attachment map) into one shared-memory segment
(:class:`~repro.devices.sharedmem.SharedFleet`), then fans out one task
per cell (addressed ``(fingerprint, run, cell)``, seeded by the rollout
seed's child for that cell) and a *reduction* that replays the run
generator's post-prologue state through the repair rounds, folds the
per-cell summaries into the run's metric dict and unlinks the segment.
Cell tasks carry only the ~100-byte segment descriptor: each worker
attaches to the one physical fleet mapping (through a small per-worker
LRU of attachments) and slices its cell out by index — no fleet is ever
pickled or regenerated per task.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.devices.fleet import Fleet
from repro.devices.sharedmem import (
    SharedFleet,
    SharedFleetDescriptor,
    unlink_descriptor,
)
from repro.errors import ConfigurationError
from repro.experiments.reporting import Table
from repro.multicast.coordination import (
    CoordinationEntity,
    MultiCellSpec,
    attach_devices,
    partition_fleet,
)
from repro.multicast.reliability import simulate_repair_rounds
from repro.phy.coverage import CoverageClass
from repro.scenarios.spec import ScenarioSpec
from repro.sim.dispatch import (
    FanOut,
    PartialFn,
    TaskAddress,
    WorkItem,
    execute_items,
)
from repro.sim.eventlog import (
    EventLogRecorder,
    RunLog,
    repair_round_rows,
    segment_loss_rows,
)
from repro.sim.executor import CampaignExecutor
from repro.sim.montecarlo import (
    MonteCarlo,
    RunStatistics,
    collect_metric_columns,
)
from repro.sim.parallel import ResultCache
from repro.sim.phases import PhaseTimer
from repro.timebase import format_bytes
from repro.traffic.generator import generate_fleet

#: The metrics the golden harness pins, in report order.
HEADLINE_METRICS = (
    "transmissions",
    "mean_wait_s",
    "uptime_s",
    "energy_mj",
    "segments_sent",
)


def _run_meta(spec: ScenarioSpec, run_index: int) -> Dict[str, object]:
    """The run key a recorded :class:`RunLog` carries."""
    return {
        "scenario": spec.name,
        "fingerprint": spec.fingerprint(),
        "seed": spec.seed,
        "run_index": int(run_index),
        "mechanism": spec.mechanism,
        "n_devices": spec.n_devices,
        "n_cells": spec.cells.n_cells,
    }


def _multi_cell_run(
    rng: np.random.Generator,
    spec: ScenarioSpec,
    fleet,
    columnar: bool,
    run_index: int = 0,
    recording: Optional[List[RunLog]] = None,
    timer: Optional[PhaseTimer] = None,
) -> Dict[str, float]:
    """One Monte-Carlo run of a multi-cell scenario.

    The fleet is partitioned by attachment (uniform or the spec's cell
    weights), every cell's campaign is planned and executed with its own
    child generator (derived from one rollout seed drawn from ``rng``,
    so the run stays a pure function of its generator), and the repair
    rounds run per cell — each eNB transmits its own copy of the image.
    """
    timer = PhaseTimer() if timer is None else timer
    cells = partition_fleet(
        fleet, spec.cells.n_cells, rng, weights=spec.cells.weights
    )
    executor = CampaignExecutor(timings=spec.timings(), columnar=columnar)
    entity = CoordinationEntity(spec.mechanism_obj(), executor=executor)
    rollout_seed = int(rng.integers(0, 2**32))
    # The rollout plans and executes each cell internally, so the
    # multi-cell run's planning cost is folded into its execute phase.
    with timer.phase("execute"):
        report = entity.rollout(
            cells,
            spec.image(),
            spec.planning_context(),
            seed=rollout_seed,
            record_events=recording is not None,
        )
    with timer.phase("reduce"):
        repairs = [
            simulate_repair_rounds(
                spec.image(), campaign.fleet_size, spec.reliability(), rng
            )
            for campaign in report.campaigns
        ]
    if recording is not None:
        cell_logs = {}
        for campaign, repair in zip(report.campaigns, repairs):
            horizon = campaign.result.horizon_frames
            log = campaign.event_log.with_appended(
                np.concatenate([
                    repair_round_rows(repair.segments_per_round, horizon),
                    segment_loss_rows(repair.missing_per_round, horizon),
                ])
            )
            cell_logs[campaign.cell_id] = log
        meta = _run_meta(spec, run_index)
        meta["phase_timings"] = timer.timings()
        recording.append(RunLog(meta=meta, cells=cell_logs))

    histogram = fleet.coverage_histogram()
    deep = histogram[CoverageClass.ROBUST] + histogram[CoverageClass.EXTREME]
    battery = spec.battery()
    light_sleep_s = report.total_light_sleep_s
    connected_s = report.total_connected_s
    energy_mj = report.total_energy_mj
    return {
        "transmissions": float(report.total_transmissions),
        "largest_group": float(report.largest_group),
        "mean_wait_s": report.mean_wait_s,
        "light_sleep_s": light_sleep_s,
        "connected_s": connected_s,
        "uptime_s": light_sleep_s + connected_s,
        "energy_mj": energy_mj,
        "battery_drain_ppm": (
            battery.fraction_consumed(energy_mj / spec.n_devices) * 1e6
        ),
        "segments_sent": float(sum(r.segments_sent for r in repairs)),
        "repair_rounds": float(max(r.rounds for r in repairs)),
        "delivered_fraction": (
            sum(r.devices_complete for r in repairs) / spec.n_devices
        ),
        "deep_coverage_share": deep / spec.n_devices,
        "n_cells": float(report.n_cells),
    }


def scenario_run(
    rng: np.random.Generator,
    _run_index: int,
    spec: ScenarioSpec,
    columnar: bool = True,
    recording: Optional[List[RunLog]] = None,
) -> Dict[str, float]:
    """One Monte-Carlo run of ``spec`` (picklable; process-pool safe).

    When ``recording`` is a list, a :class:`~repro.sim.eventlog.RunLog`
    for the run (one event log per cell, repair rounds appended) is
    appended to it. Recording works only with in-process execution —
    a process-pool worker would append to its own copy of the list.
    """
    timer = PhaseTimer()
    with timer.phase("generate"):
        fleet = generate_fleet(
            spec.n_devices,
            spec.mixture_obj(),
            rng,
            coverage_mix=spec.coverage,
            battery=spec.battery(),
        )
    if spec.cells.is_multi_cell:
        return _multi_cell_run(
            rng,
            spec,
            fleet,
            columnar,
            run_index=_run_index,
            recording=recording,
            timer=timer,
        )
    mechanism = spec.mechanism_obj()
    with timer.phase("plan"):
        plan = mechanism.plan(fleet, spec.planning_context(), rng)
    executor = CampaignExecutor(timings=spec.timings(), columnar=columnar)
    recorder = EventLogRecorder() if recording is not None else None
    with timer.phase("execute"):
        result = executor.execute(fleet, plan, rng=rng, recorder=recorder)
    with timer.phase("reduce"):
        repair = simulate_repair_rounds(
            spec.image(), spec.n_devices, spec.reliability(), rng
        )
    if recorder is not None:
        log = recorder.finalize(cell=0).with_appended(
            np.concatenate([
                repair_round_rows(
                    repair.segments_per_round, result.horizon_frames
                ),
                segment_loss_rows(
                    repair.missing_per_round, result.horizon_frames
                ),
            ])
        )
        meta = _run_meta(spec, _run_index)
        meta["phase_timings"] = timer.timings()
        recording.append(RunLog(meta=meta, cells={0: log}))

    summary = result.fleet
    histogram = fleet.coverage_histogram()
    deep = histogram[CoverageClass.ROBUST] + histogram[CoverageClass.EXTREME]
    battery = spec.battery()
    return {
        "transmissions": float(result.n_transmissions),
        "largest_group": float(
            max(t.group_size for t in plan.transmissions)
        ),
        "mean_wait_s": result.mean_wait_s,
        "light_sleep_s": summary.light_sleep_s,
        "connected_s": summary.connected_s,
        "uptime_s": summary.light_sleep_s + summary.connected_s,
        "energy_mj": summary.energy_mj,
        "battery_drain_ppm": (
            battery.fraction_consumed(summary.energy_mj / spec.n_devices) * 1e6
        ),
        "segments_sent": float(repair.segments_sent),
        "repair_rounds": float(repair.rounds),
        "delivered_fraction": repair.devices_complete / spec.n_devices,
        "deep_coverage_share": deep / spec.n_devices,
    }


# ----------------------------------------------------------------------
# Fused (run x cell) decomposition — zero-copy over shared memory
# ----------------------------------------------------------------------
#: Per-worker LRU of shared-fleet attachments keyed by segment name. A
#: worker draining several cells of the same run maps the segment once;
#: eviction closes (unmaps) — never unlinks — the evicted mapping.
_ATTACH_CACHE: "OrderedDict[str, SharedFleet]" = OrderedDict()
_ATTACH_CACHE_MAX = 4

#: Per-worker counters: how often the zero-copy path attached, hit the
#: cache, or evicted. The attach-count regression tests read these to
#: prove the descriptor path never silently falls back to pickling.
_ATTACH_STATS = {"attaches": 0, "hits": 0, "evictions": 0}


def _reset_attach_cache() -> None:
    """Close every cached mapping and zero the stats (test helper)."""
    while _ATTACH_CACHE:
        _, shared = _ATTACH_CACHE.popitem(last=False)
        shared.close()
    for key in _ATTACH_STATS:
        _ATTACH_STATS[key] = 0


def _attached_fleet(
    descriptor: SharedFleetDescriptor, context: str = ""
) -> SharedFleet:
    """Fetch (or create) this worker's mapping of a shared fleet."""
    shared = _ATTACH_CACHE.get(descriptor.name)
    if shared is not None:
        _ATTACH_CACHE.move_to_end(descriptor.name)
        _ATTACH_STATS["hits"] += 1
        return shared
    shared = SharedFleet.attach(descriptor, context=context)
    _ATTACH_STATS["attaches"] += 1
    _ATTACH_CACHE[descriptor.name] = shared
    while len(_ATTACH_CACHE) > _ATTACH_CACHE_MAX:
        _, evicted = _ATTACH_CACHE.popitem(last=False)
        evicted.close()
        _ATTACH_STATS["evictions"] += 1
    return shared


def _worker_rss_kb() -> int:
    """This process's peak resident set (VmHWM, kB); 0 off-Linux."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


@dataclass(frozen=True)
class _FusedRunPayload:
    """What a fused run-level task needs besides its generator."""

    spec: ScenarioSpec
    root_seed: int
    columnar: bool


@dataclass(frozen=True)
class _FusedCellPayload:
    """What a fused cell task needs: a ~100-byte segment descriptor.

    The descriptor names the run's shared fleet; the cell's sub-fleet is
    ``flatnonzero(attachments == cell_id)`` over the shared columns, so
    the payload stays constant-size no matter how large the fleet is.
    """

    spec: ScenarioSpec
    columnar: bool
    cell_id: int
    descriptor: SharedFleetDescriptor


@dataclass(frozen=True)
class _FusedReduceState:
    """Prologue state carried into a fused run's reduction."""

    spec: ScenarioSpec
    rng_state: Dict[str, Any]
    histogram: Dict[CoverageClass, int]
    descriptor: Optional[SharedFleetDescriptor] = None
    #: Prologue wall-clock (``generate_s``, ``publish_s``) — carried
    #: for observability; never folded into the run's metric dict.
    phase_timings: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class _CellSummary:
    """The scalars a cell contributes to its run's metrics.

    Every field is computed in the cell worker from the full per-cell
    campaign — shipping these instead of the campaign itself keeps the
    fused queue's IPC per task constant-size regardless of fleet size.
    ``worker_rss_kb`` reports the executing worker's peak RSS so the
    benchmarks can assert the zero-copy memory ceiling from streamed
    partials alone.
    """

    cell_id: int
    fleet_size: int
    n_transmissions: int
    largest_group: int
    mean_wait_s: float
    light_sleep_s: float
    connected_s: float
    energy_mj: float
    worker_rss_kb: int = 0
    #: Worker-side wall-clock per phase (``attach_s``, ``plan_s``,
    #: ``execute_s``) — streamed for observability (the cold-path bench
    #: aggregates these from partials); never part of the metrics.
    phase_timings: Dict[str, float] = field(default_factory=dict)


def _fused_cell_task(
    rng: np.random.Generator, address: TaskAddress, payload: _FusedCellPayload
) -> _CellSummary:
    """Plan and execute one cell of one run (fused worker entry).

    ``rng`` is the dispatcher-derived child of the run's rollout seed
    at this cell's position — the same generator
    ``CoordinationEntity.rollout(seed=...)`` hands the cell. The cell's
    sub-fleet is sliced out of the run's shared-memory fleet: the
    attachment column's stable argsort groups each cell's indices in
    ascending device order, which is exactly ``flatnonzero`` of the
    equality mask, so the sub-fleet is device-for-device identical to
    ``partition_fleet``'s.
    """
    timer = PhaseTimer()
    with timer.phase("attach"):
        shared = _attached_fleet(payload.descriptor, context=str(address))
        indices = np.flatnonzero(
            shared.extra("attachments") == payload.cell_id
        )
        fleet = Fleet.from_arrays(shared.arrays.take(indices), trusted=True)
    spec = payload.spec
    mechanism = spec.mechanism_obj()
    with timer.phase("plan"):
        plan = mechanism.plan(fleet, spec.planning_context(), rng)
        plan.validate(fleet)
    executor = CampaignExecutor(
        timings=spec.timings(), columnar=payload.columnar
    )
    with timer.phase("execute"):
        result = executor.execute(fleet, plan, rng=rng)
    return _CellSummary(
        cell_id=payload.cell_id,
        fleet_size=len(fleet),
        n_transmissions=plan.n_transmissions,
        largest_group=max(t.group_size for t in plan.transmissions),
        mean_wait_s=result.mean_wait_s,
        light_sleep_s=result.fleet.light_sleep_s,
        connected_s=result.fleet.connected_s,
        energy_mj=result.fleet.energy_mj,
        worker_rss_kb=_worker_rss_kb(),
        phase_timings=timer.timings(),
    )


def _fused_run_reduce(
    state: _FusedReduceState,
    results: List[_CellSummary],
    address: TaskAddress,
) -> Dict[str, float]:
    """Fold per-cell summaries into one run's metric dict.

    Restores the run generator to its post-prologue state and draws the
    repair rounds per cell in ascending cell order — the identical
    stream position the serial :func:`_multi_cell_run` reaches after
    its rollout, so every metric is bit-identical to the serial run.

    As the last consumer of the run's shared fleet, the reduction also
    unlinks the segment (creator-side ownership delegated to the run's
    terminal task); worker mappings close as their LRU entries evict.
    """
    try:
        return _fused_run_fold(state, results)
    finally:
        if state.descriptor is not None:
            unlink_descriptor(state.descriptor)


def _fused_run_fold(
    state: _FusedReduceState, results: List[_CellSummary]
) -> Dict[str, float]:
    spec = state.spec
    rng = np.random.default_rng()
    rng.bit_generator.state = state.rng_state
    repairs = [
        simulate_repair_rounds(
            spec.image(), summary.fleet_size, spec.reliability(), rng
        )
        for summary in results
    ]
    total_devices = sum(s.fleet_size for s in results)
    deep = (
        state.histogram[CoverageClass.ROBUST]
        + state.histogram[CoverageClass.EXTREME]
    )
    battery = spec.battery()
    light_sleep_s = sum(s.light_sleep_s for s in results)
    connected_s = sum(s.connected_s for s in results)
    energy_mj = sum(s.energy_mj for s in results)
    return {
        "transmissions": float(sum(s.n_transmissions for s in results)),
        "largest_group": float(max(s.largest_group for s in results)),
        "mean_wait_s": sum(
            s.mean_wait_s * s.fleet_size for s in results
        ) / total_devices,
        "light_sleep_s": light_sleep_s,
        "connected_s": connected_s,
        "uptime_s": light_sleep_s + connected_s,
        "energy_mj": energy_mj,
        "battery_drain_ppm": (
            battery.fraction_consumed(energy_mj / spec.n_devices) * 1e6
        ),
        "segments_sent": float(sum(r.segments_sent for r in repairs)),
        "repair_rounds": float(max(r.rounds for r in repairs)),
        "delivered_fraction": (
            sum(r.devices_complete for r in repairs) / spec.n_devices
        ),
        "deep_coverage_share": deep / spec.n_devices,
        "n_cells": float(len(results)),
    }


def _fused_run_task(
    rng: np.random.Generator, address: TaskAddress, payload: _FusedRunPayload
) -> Any:
    """One fused run-level task.

    Single-cell scenarios execute the whole run in place (bit-identical
    to the serial run by construction — same generator, same code).
    Multi-cell scenarios run the prologue and fan out one task per
    non-empty cell, each addressed ``(fingerprint, run, cell)`` and
    seeded ``SeedSequence(rollout_seed).spawn(n)[position]`` — exactly
    the rollout's per-cell child contract.
    """
    spec = payload.spec
    if not spec.cells.is_multi_cell:
        metrics = scenario_run(
            rng, address.run_index, spec, columnar=payload.columnar
        )
        return {k: float(v) for k, v in metrics.items()}
    # Prologue: the run generator's draws, in the serial run's exact
    # order — fleet sampling, cell attachment, rollout seed. The fleet's
    # columns are generated straight into a staged shared-memory
    # segment, so publishing below is a header write, not a copy.
    timer = PhaseTimer()
    staged = SharedFleet.allocate(spec.n_devices, extras=("attachments",))
    try:
        with timer.phase("generate"):
            fleet = generate_fleet(
                spec.n_devices,
                spec.mixture_obj(),
                rng,
                coverage_mix=spec.coverage,
                battery=spec.battery(),
                out=staged.column_buffers(),
            )
        attachments = attach_devices(
            len(fleet),
            MultiCellSpec(
                n_cells=spec.cells.n_cells, weights=spec.cells.weights
            ),
            rng,
        )
        rollout_seed = int(rng.integers(0, 2**32))
        with timer.phase("publish"):
            np.copyto(
                staged.extra_buffer("attachments"),
                np.asarray(attachments, dtype=np.int64),
            )
            shared = staged.seal(fleet.arrays)
    except BaseException:
        staged.unlink()
        raise
    cell_ids = np.unique(attachments).tolist()
    items = tuple(
        WorkItem(
            address=TaskAddress(
                address.campaign, address.run_index, cell_id
            ),
            fn=_fused_cell_task,
            payload=_FusedCellPayload(
                spec=spec,
                columnar=payload.columnar,
                cell_id=cell_id,
                descriptor=shared.descriptor,
            ),
            seed=rollout_seed,
            spawn_index=position,
        )
        for position, cell_id in enumerate(cell_ids)
    )
    return FanOut(
        items=items,
        reduce_fn=_fused_run_reduce,
        state=_FusedReduceState(
            spec=spec,
            rng_state=rng.bit_generator.state,
            histogram=fleet.coverage_histogram(),
            descriptor=shared.descriptor,
            phase_timings=timer.timings(),
        ),
    )


def scenario_work_items(
    spec: ScenarioSpec,
    root_seed: int,
    n_runs: int,
    columnar: bool = True,
) -> List[WorkItem]:
    """The fused work items of one scenario campaign (one per run)."""
    if n_runs < 1:
        raise ConfigurationError(f"n_runs must be >= 1, got {n_runs}")
    fingerprint = spec.fingerprint()
    payload = _FusedRunPayload(
        spec=spec, root_seed=int(root_seed), columnar=columnar
    )
    return [
        WorkItem(
            address=TaskAddress(fingerprint, run_index),
            fn=_fused_run_task,
            payload=payload,
            seed=int(root_seed),
            spawn_index=run_index,
        )
        for run_index in range(n_runs)
    ]


def _fused_scenario_stats(
    spec: ScenarioSpec,
    root_seed: int,
    n_runs: int,
    workers: Optional[int],
    columnar: bool,
    cache: Optional[ResultCache],
    on_partial: Optional[PartialFn] = None,
    chunk_size: Optional[int] = None,
) -> Dict[str, RunStatistics]:
    """Run one scenario through the fused scheduler (cache-aware).

    Mirrors :meth:`MonteCarlo.run`'s cache protocol exactly — same key,
    same stored columns — so serial, process and fused executions of
    the same campaign share cache entries interchangeably. A cache hit
    streams no partials (nothing executes).
    """
    key = None
    if cache is not None:
        key = ResultCache.key(
            f"scenario/{spec.name}", spec.fingerprint(), root_seed, n_runs
        )
        cached = cache.load(key)
        if cached is not None:
            return {
                name: RunStatistics(values=values)
                for name, values in cached.items()
            }
    per_run = execute_items(
        scenario_work_items(spec, root_seed, n_runs, columnar=columnar),
        workers=workers,
        on_partial=on_partial,
        chunk_size=chunk_size,
    )
    collected = collect_metric_columns(per_run)
    if key is not None:
        assert cache is not None
        cache.store(
            key,
            collected,
            meta={
                "tag": f"scenario/{spec.name}",
                "fingerprint": spec.fingerprint(),
                "seed": root_seed,
                "n_runs": n_runs,
            },
        )
    return {
        name: RunStatistics(values=np.asarray(vals, dtype=np.float64))
        for name, vals in collected.items()
    }


def run_scenario(
    spec: ScenarioSpec,
    *,
    backend: str = "serial",
    workers: Optional[int] = None,
    n_runs: Optional[int] = None,
    seed: Optional[int] = None,
    columnar: bool = True,
    cache: Optional[ResultCache] = None,
    record_dir: Optional[Union[str, Path]] = None,
    on_partial: Optional[PartialFn] = None,
    chunk_size: Optional[int] = None,
) -> Dict[str, RunStatistics]:
    """Run ``spec`` through the Monte-Carlo harness and aggregate.

    ``backend``/``workers`` select serial, process-pool or fused
    work-queue execution (bit-identical in every case; ``fused``
    additionally flattens multi-cell runs into per-cell tasks so runs
    and cells share one pool); ``columnar=False`` drops to the
    per-device reference executor (the equivalence oracle the
    integration tests pin the fast path to). ``record_dir`` turns on
    event-log recording: every run writes one
    :class:`~repro.sim.eventlog.RunLog` ``.npz`` into the directory.
    Recording is observability on top of an unchanged simulation —
    metrics are bit-identical with and without it — but it requires the
    serial backend (logs cannot cross a process pool through a shared
    list) and an uncached harness (a cache hit skips the run function,
    so nothing would be recorded). ``on_partial`` streams
    :class:`~repro.sim.dispatch.PartialResult` records (per-cell
    summaries, per-run folds) back as they complete — fused backend
    only, since only the work queue surfaces incremental completions.
    ``chunk_size`` sets the fused dispatch grain (None = auto;
    bit-identical results at every grain; ignored off-fused).
    """
    root_seed = spec.seed if seed is None else seed
    if on_partial is not None and backend != "fused":
        raise ConfigurationError(
            f"streaming partial results requires backend='fused', "
            f"got {backend!r}"
        )
    recording: Optional[List[RunLog]] = None
    if record_dir is not None:
        if backend != "serial":
            raise ConfigurationError(
                f"recording requires backend='serial', got {backend!r}"
            )
        if cache is not None:
            raise ConfigurationError(
                "recording requires an uncached run (cache hits skip "
                "execution, so no events would be recorded)"
            )
        recording = []
    if backend == "fused":
        return _fused_scenario_stats(
            spec,
            root_seed,
            spec.n_runs if n_runs is None else n_runs,
            workers,
            columnar,
            cache,
            on_partial=on_partial,
            chunk_size=chunk_size,
        )
    harness = MonteCarlo(
        n_runs=spec.n_runs if n_runs is None else n_runs,
        seed=root_seed,
        backend=backend,
        workers=workers,
        cache=cache,
    )
    stats = harness.run(
        partial(
            scenario_run, spec=spec, columnar=columnar, recording=recording
        ),
        cache_tag=f"scenario/{spec.name}",
        config_fingerprint=spec.fingerprint(),
    )
    if recording is not None:
        directory = Path(record_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for runlog in recording:
            runlog.meta["seed"] = root_seed
            runlog.save(
                directory
                / run_log_filename(
                    spec.name, spec.fingerprint(), runlog.meta["run_index"]
                )
            )
    return stats


def run_log_filename(scenario: str, fingerprint: str, run_index: int) -> str:
    """Canonical ``.npz`` filename of one recorded run.

    The short fingerprint keeps sweep variants of the same scenario
    (same name, different axis values) from overwriting each other.
    """
    return f"{scenario}-{fingerprint[:8]}-run{int(run_index):03d}.npz"


def headline_means(stats: Dict[str, RunStatistics]) -> Dict[str, float]:
    """The pinned headline metrics (means over runs) of one scenario."""
    return {name: stats[name].mean for name in HEADLINE_METRICS}


def scenario_table(
    results: Dict[str, Dict[str, RunStatistics]], runs_label: str
) -> Table:
    """Tabulate per-scenario headline metrics for the CLI."""
    rows: List[Tuple[str, ...]] = []
    for name, stats in results.items():
        rows.append(
            (
                name,
                f"{stats['transmissions'].mean:.1f}",
                f"{stats['mean_wait_s'].mean:.2f}s",
                f"{stats['uptime_s'].mean:.0f}s",
                f"{stats['energy_mj'].mean / 1000:.1f}J",
                f"{stats['segments_sent'].mean:.0f}",
                f"{stats['delivered_fraction'].mean * 100:.1f}%",
            )
        )
    return Table(
        title=f"Scenario campaign metrics ({runs_label} runs each)",
        headers=(
            "scenario",
            "transmissions",
            "mean wait",
            "fleet uptime",
            "fleet energy",
            "segments sent",
            "delivered",
        ),
        rows=tuple(rows),
        notes=(
            "uptime = fleet light-sleep + connected seconds over the "
            "campaign horizon; segments sent includes NACK-driven repair "
            "rounds.",
        ),
    )


def format_spec_row(spec: ScenarioSpec) -> Tuple[str, ...]:
    """One ``scenarios list`` table row."""
    fields = spec.summary_fields()
    return (
        spec.name,
        str(fields["devices"]),
        str(fields["mixture"]),
        str(fields["mechanism"]),
        str(fields["grouping"]),
        format_bytes(int(fields["payload"])),
        f"{fields['collision']:.2f}",
        f"{fields['loss']:.2f}",
        str(fields["cells"]),
        spec.description,
    )
