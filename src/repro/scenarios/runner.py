"""Scenario execution: one spec -> aggregated metrics.

One Monte-Carlo run of a scenario samples a fleet from the spec's
mixture and coverage mix, plans the campaign with the spec's mechanism,
executes the plan (columnar fast path by default; the per-device row
path is kept selectable as the equivalence oracle), and simulates the
segment-loss/repair rounds for the delivered image. The run function is
a module-level picklable callable, so every scenario fans out through
either Monte-Carlo backend (``serial`` or ``process``) unchanged, and
both backends produce bit-identical metric arrays.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.reporting import Table
from repro.multicast.coordination import CoordinationEntity, partition_fleet
from repro.multicast.reliability import simulate_repair_rounds
from repro.phy.coverage import CoverageClass
from repro.scenarios.spec import ScenarioSpec
from repro.sim.executor import CampaignExecutor
from repro.sim.montecarlo import MonteCarlo, RunStatistics
from repro.sim.parallel import ResultCache
from repro.timebase import format_bytes
from repro.traffic.generator import generate_fleet

#: The metrics the golden harness pins, in report order.
HEADLINE_METRICS = (
    "transmissions",
    "mean_wait_s",
    "uptime_s",
    "energy_mj",
    "segments_sent",
)


def _multi_cell_run(
    rng: np.random.Generator,
    spec: ScenarioSpec,
    fleet,
    columnar: bool,
) -> Dict[str, float]:
    """One Monte-Carlo run of a multi-cell scenario.

    The fleet is partitioned by attachment (uniform or the spec's cell
    weights), every cell's campaign is planned and executed with its own
    child generator (derived from one rollout seed drawn from ``rng``,
    so the run stays a pure function of its generator), and the repair
    rounds run per cell — each eNB transmits its own copy of the image.
    """
    cells = partition_fleet(
        fleet, spec.cells.n_cells, rng, weights=spec.cells.weights
    )
    executor = CampaignExecutor(timings=spec.timings(), columnar=columnar)
    entity = CoordinationEntity(spec.mechanism_obj(), executor=executor)
    rollout_seed = int(rng.integers(0, 2**32))
    report = entity.rollout(
        cells, spec.image(), spec.planning_context(), seed=rollout_seed
    )
    repairs = [
        simulate_repair_rounds(
            spec.image(), campaign.fleet_size, spec.reliability(), rng
        )
        for campaign in report.campaigns
    ]

    histogram = fleet.coverage_histogram()
    deep = histogram[CoverageClass.ROBUST] + histogram[CoverageClass.EXTREME]
    battery = spec.battery()
    light_sleep_s = report.total_light_sleep_s
    connected_s = report.total_connected_s
    energy_mj = report.total_energy_mj
    return {
        "transmissions": float(report.total_transmissions),
        "largest_group": float(report.largest_group),
        "mean_wait_s": report.mean_wait_s,
        "light_sleep_s": light_sleep_s,
        "connected_s": connected_s,
        "uptime_s": light_sleep_s + connected_s,
        "energy_mj": energy_mj,
        "battery_drain_ppm": (
            battery.fraction_consumed(energy_mj / spec.n_devices) * 1e6
        ),
        "segments_sent": float(sum(r.segments_sent for r in repairs)),
        "repair_rounds": float(max(r.rounds for r in repairs)),
        "delivered_fraction": (
            sum(r.devices_complete for r in repairs) / spec.n_devices
        ),
        "deep_coverage_share": deep / spec.n_devices,
        "n_cells": float(report.n_cells),
    }


def scenario_run(
    rng: np.random.Generator,
    _run_index: int,
    spec: ScenarioSpec,
    columnar: bool = True,
) -> Dict[str, float]:
    """One Monte-Carlo run of ``spec`` (picklable; process-pool safe)."""
    fleet = generate_fleet(
        spec.n_devices,
        spec.mixture_obj(),
        rng,
        coverage_mix=spec.coverage,
        battery=spec.battery(),
    )
    if spec.cells.is_multi_cell:
        return _multi_cell_run(rng, spec, fleet, columnar)
    mechanism = spec.mechanism_obj()
    plan = mechanism.plan(fleet, spec.planning_context(), rng)
    executor = CampaignExecutor(timings=spec.timings(), columnar=columnar)
    result = executor.execute(fleet, plan, rng=rng)
    repair = simulate_repair_rounds(
        spec.image(), spec.n_devices, spec.reliability(), rng
    )

    summary = result.fleet
    histogram = fleet.coverage_histogram()
    deep = histogram[CoverageClass.ROBUST] + histogram[CoverageClass.EXTREME]
    battery = spec.battery()
    return {
        "transmissions": float(result.n_transmissions),
        "largest_group": float(
            max(t.group_size for t in plan.transmissions)
        ),
        "mean_wait_s": result.mean_wait_s,
        "light_sleep_s": summary.light_sleep_s,
        "connected_s": summary.connected_s,
        "uptime_s": summary.light_sleep_s + summary.connected_s,
        "energy_mj": summary.energy_mj,
        "battery_drain_ppm": (
            battery.fraction_consumed(summary.energy_mj / spec.n_devices) * 1e6
        ),
        "segments_sent": float(repair.segments_sent),
        "repair_rounds": float(repair.rounds),
        "delivered_fraction": repair.devices_complete / spec.n_devices,
        "deep_coverage_share": deep / spec.n_devices,
    }


def run_scenario(
    spec: ScenarioSpec,
    *,
    backend: str = "serial",
    workers: Optional[int] = None,
    n_runs: Optional[int] = None,
    seed: Optional[int] = None,
    columnar: bool = True,
    cache: Optional[ResultCache] = None,
) -> Dict[str, RunStatistics]:
    """Run ``spec`` through the Monte-Carlo harness and aggregate.

    ``backend``/``workers`` select serial or process-pool execution
    (bit-identical either way); ``columnar=False`` drops to the
    per-device reference executor (the equivalence oracle the
    integration tests pin the fast path to).
    """
    harness = MonteCarlo(
        n_runs=spec.n_runs if n_runs is None else n_runs,
        seed=spec.seed if seed is None else seed,
        backend=backend,
        workers=workers,
        cache=cache,
    )
    return harness.run(
        partial(scenario_run, spec=spec, columnar=columnar),
        cache_tag=f"scenario/{spec.name}",
        config_fingerprint=spec.fingerprint(),
    )


def headline_means(stats: Dict[str, RunStatistics]) -> Dict[str, float]:
    """The pinned headline metrics (means over runs) of one scenario."""
    return {name: stats[name].mean for name in HEADLINE_METRICS}


def scenario_table(
    results: Dict[str, Dict[str, RunStatistics]], runs_label: str
) -> Table:
    """Tabulate per-scenario headline metrics for the CLI."""
    rows: List[Tuple[str, ...]] = []
    for name, stats in results.items():
        rows.append(
            (
                name,
                f"{stats['transmissions'].mean:.1f}",
                f"{stats['mean_wait_s'].mean:.2f}s",
                f"{stats['uptime_s'].mean:.0f}s",
                f"{stats['energy_mj'].mean / 1000:.1f}J",
                f"{stats['segments_sent'].mean:.0f}",
                f"{stats['delivered_fraction'].mean * 100:.1f}%",
            )
        )
    return Table(
        title=f"Scenario campaign metrics ({runs_label} runs each)",
        headers=(
            "scenario",
            "transmissions",
            "mean wait",
            "fleet uptime",
            "fleet energy",
            "segments sent",
            "delivered",
        ),
        rows=tuple(rows),
        notes=(
            "uptime = fleet light-sleep + connected seconds over the "
            "campaign horizon; segments sent includes NACK-driven repair "
            "rounds.",
        ),
    )


def format_spec_row(spec: ScenarioSpec) -> Tuple[str, ...]:
    """One ``scenarios list`` table row."""
    fields = spec.summary_fields()
    return (
        spec.name,
        str(fields["devices"]),
        str(fields["mixture"]),
        str(fields["mechanism"]),
        str(fields["grouping"]),
        format_bytes(int(fields["payload"])),
        f"{fields['collision']:.2f}",
        f"{fields['loss']:.2f}",
        str(fields["cells"]),
        spec.description,
    )
