"""Scenario x axis grid sweeps.

A sweep takes registered scenarios and a list of axes (named spec
fields with value lists), expands the full cartesian grid of spec
variants with :meth:`~repro.scenarios.spec.ScenarioSpec.with_overrides`,
and runs every cell through the Monte-Carlo harness — each cell's runs
fan out across the process pool when ``backend="process"``, and every
campaign executes on the columnar fast path. This is the "as many
scenarios as you can imagine" layer: the paper varies one axis at a
time; a sweep composes them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.reporting import Table
from repro.multicast.coordination import MultiCellSpec
from repro.scenarios.runner import run_scenario, scenario_work_items
from repro.scenarios.spec import ScenarioSpec
from repro.sim.dispatch import execute_items
from repro.sim.montecarlo import RunStatistics, collect_metric_columns
from repro.sim.parallel import ResultCache
from repro.timebase import format_bytes

#: CLI axis aliases -> ScenarioSpec field names. Stress axes plus the
#: grouping-policy axis are sweepable; identity fields (name, mechanism,
#: mixture) make a *different scenario*, not a point on an axis —
#: grouping is an axis because every policy answers the same question
#: ("who shares a transmission?") for the same scenario.
AXIS_FIELDS: Dict[str, str] = {
    "devices": "n_devices",
    "payload": "payload_bytes",
    "ti": "inactivity_timer_s",
    "collision": "ra_collision_probability",
    "loss": "segment_loss_probability",
    "cells": "cells",
    "grouping": "grouping",
    "runs": "n_runs",
    "seed": "seed",
    "record": "record_events",
}

#: Axes whose values are registry names, not numbers.
_STRING_AXES = frozenset({"grouping"})

#: Axes whose values are booleans (CLI accepts 0/1/true/false).
_BOOL_AXES = frozenset({"record"})

#: Axes whose numeric CLI value must be wrapped into a richer spec
#: field. A ``cells`` sweep varies the uniform cell count (sweeping the
#: full weighted shape would be a different scenario, not an axis).
_AXIS_WRAPPERS = {
    "cells": lambda value: MultiCellSpec(n_cells=int(value)),
}

#: The default ≥3-axis stress grid (kept tiny: the grid multiplies).
DEFAULT_AXES: Tuple[Tuple[str, Tuple[float, ...]], ...] = (
    ("devices", (100, 400)),
    ("collision", (0.0, 0.2)),
    ("loss", (0.0, 0.05)),
)


@dataclass(frozen=True)
class SweepAxis:
    """One sweep dimension: a spec field and the values it takes."""

    name: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if self.name not in AXIS_FIELDS:
            raise ConfigurationError(
                f"unknown sweep axis {self.name!r}; "
                f"available: {sorted(AXIS_FIELDS)}"
            )
        if not self.values:
            raise ConfigurationError(f"axis {self.name!r} needs values")

    @property
    def field(self) -> str:
        """The :class:`ScenarioSpec` field this axis overrides."""
        return AXIS_FIELDS[self.name]


@dataclass(frozen=True)
class SweepCell:
    """One grid point: the derived spec plus its axis coordinates."""

    base_name: str
    coordinates: Tuple[Tuple[str, Any], ...]
    spec: ScenarioSpec

    @property
    def label(self) -> str:
        """Human-readable cell id (``name[axis=value,...]``)."""
        coords = ",".join(
            f"{axis}={_format_axis_value(value)}"
            for axis, value in self.coordinates
        )
        return f"{self.base_name}[{coords}]"


def _format_axis_value(value: Any) -> str:
    """Compact rendering of one axis value (numeric or registry name)."""
    if isinstance(value, (int, float)):
        return f"{value:g}"
    return str(value)


def parse_axis(spec: str) -> SweepAxis:
    """Parse a CLI ``--axis name=v1,v2,...`` argument."""
    name, sep, values_part = spec.partition("=")
    if not sep or not values_part:
        raise ConfigurationError(
            f"axis must look like name=v1,v2,... got {spec!r}"
        )
    name = name.strip()
    field = AXIS_FIELDS.get(name)
    values: List[Any] = []
    for part in values_part.split(","):
        part = part.strip()
        if not part:
            continue
        if name in _STRING_AXES:
            values.append(part)
            continue
        if name in _BOOL_AXES:
            lowered = part.lower()
            if lowered not in ("0", "1", "true", "false"):
                raise ConfigurationError(
                    f"axis {name!r} takes 0/1/true/false, got {part!r}"
                )
            values.append(lowered in ("1", "true"))
            continue
        number = float(part)
        if field in ("n_devices", "payload_bytes", "cells", "n_runs", "seed"):
            number = int(number)
        values.append(number)
    return SweepAxis(name=name, values=tuple(values))


def expand_grid(
    scenarios: Sequence[ScenarioSpec], axes: Sequence[SweepAxis]
) -> List[SweepCell]:
    """The full scenario x axis cartesian grid, as derived specs."""
    if not scenarios:
        raise ConfigurationError("a sweep needs at least one scenario")
    if not axes:
        raise ConfigurationError("a sweep needs at least one axis")
    seen = set()
    for axis in axes:
        if axis.name in seen:
            raise ConfigurationError(f"duplicate sweep axis {axis.name!r}")
        seen.add(axis.name)
    cells: List[SweepCell] = []
    for spec in scenarios:
        for combo in itertools.product(*(axis.values for axis in axes)):
            overrides = {
                axis.field: _AXIS_WRAPPERS.get(axis.name, lambda v: v)(value)
                for axis, value in zip(axes, combo)
            }
            coordinates = tuple(
                (axis.name, value) for axis, value in zip(axes, combo)
            )
            cells.append(
                SweepCell(
                    base_name=spec.name,
                    coordinates=coordinates,
                    spec=spec.with_overrides(**overrides),
                )
            )
    return cells


def run_sweep(
    scenarios: Sequence[ScenarioSpec],
    axes: Sequence[SweepAxis],
    *,
    backend: str = "serial",
    workers: Optional[int] = None,
    n_runs: Optional[int] = None,
    columnar: bool = True,
    cache: Optional[ResultCache] = None,
    record_dir: Optional[str] = None,
    chunk_size: Optional[int] = None,
) -> "List[Tuple[SweepCell, Dict[str, RunStatistics]]]":
    """Execute every grid cell and return (cell, aggregated stats) pairs.

    Grid cells whose spec has ``record_events`` set (e.g. via a
    ``record=1`` axis) write their per-run event logs into
    ``record_dir``; recording cells run serially and uncached (see
    :func:`run_scenario`). Without a ``record_dir`` the flag is inert.

    ``backend="fused"`` flattens the whole grid — every (scenario,
    run, cell) task of every non-recording grid cell — into one fused
    work queue (:mod:`repro.sim.dispatch`), so there is no barrier
    between grid cells: cells of one scenario variant execute while
    another variant's runs are still materialising. Per-grid-cell
    results are bit-identical to running each cell alone on any
    backend.
    """
    grid = expand_grid(scenarios, axes)
    if backend == "fused":
        return _run_sweep_fused(
            grid,
            workers=workers,
            n_runs=n_runs,
            columnar=columnar,
            cache=cache,
            record_dir=record_dir,
            chunk_size=chunk_size,
        )
    results = []
    for cell in grid:
        recording = record_dir is not None and cell.spec.record_events
        stats = run_scenario(
            cell.spec,
            backend="serial" if recording else backend,
            workers=workers,
            n_runs=n_runs,
            columnar=columnar,
            cache=None if recording else cache,
            record_dir=record_dir if recording else None,
        )
        results.append((cell, stats))
    return results


def _run_sweep_fused(
    grid: Sequence[SweepCell],
    *,
    workers: Optional[int],
    n_runs: Optional[int],
    columnar: bool,
    cache: Optional[ResultCache],
    record_dir: Optional[str],
    chunk_size: Optional[int] = None,
) -> "List[Tuple[SweepCell, Dict[str, RunStatistics]]]":
    """One fused dispatch for the whole grid.

    Recording cells still run serially through :func:`run_scenario`
    (event logs cannot cross a pool); cached cells are answered from
    the cache with the exact key any other backend would use. Every
    remaining (scenario, run) work item — and the per-cell tasks each
    multi-cell run fans out into — drains through a single scheduler.
    """
    slots: List[Optional[Dict[str, RunStatistics]]] = [None] * len(grid)
    spans: List[Tuple[int, int, int, Optional[str], int]] = []
    items = []
    for index, cell in enumerate(grid):
        if record_dir is not None and cell.spec.record_events:
            slots[index] = run_scenario(
                cell.spec,
                backend="serial",
                workers=workers,
                n_runs=n_runs,
                columnar=columnar,
                cache=None,
                record_dir=record_dir,
            )
            continue
        runs = cell.spec.n_runs if n_runs is None else n_runs
        key = None
        if cache is not None:
            key = ResultCache.key(
                f"scenario/{cell.spec.name}",
                cell.spec.fingerprint(),
                cell.spec.seed,
                runs,
            )
            cached = cache.load(key)
            if cached is not None:
                slots[index] = {
                    name: RunStatistics(values=values)
                    for name, values in cached.items()
                }
                continue
        cell_items = scenario_work_items(
            cell.spec, cell.spec.seed, runs, columnar=columnar
        )
        spans.append((index, len(items), len(cell_items), key, runs))
        items.extend(cell_items)
    if items:
        outputs = execute_items(items, workers=workers, chunk_size=chunk_size)
        for index, start, count, key, runs in spans:
            collected = collect_metric_columns(
                outputs[start : start + count]
            )
            if key is not None:
                assert cache is not None
                cache.store(
                    key,
                    collected,
                    meta={
                        "tag": f"scenario/{grid[index].spec.name}",
                        "fingerprint": grid[index].spec.fingerprint(),
                        "seed": grid[index].spec.seed,
                        "n_runs": runs,
                    },
                )
            slots[index] = {
                name: RunStatistics(
                    values=np.asarray(vals, dtype=np.float64)
                )
                for name, vals in collected.items()
            }
    results = []
    for cell, stats in zip(grid, slots):
        assert stats is not None
        results.append((cell, stats))
    return results


def sweep_table(
    results: "Sequence[Tuple[SweepCell, Dict[str, RunStatistics]]]",
    axes: Sequence[SweepAxis],
) -> Table:
    """Tabulate a sweep: one row per grid cell."""
    axis_names = tuple(axis.name for axis in axes)
    rows = []
    for cell, stats in results:
        coords = dict(cell.coordinates)
        axis_cells = tuple(
            format_bytes(int(coords[name]))
            if name == "payload"
            else _format_axis_value(coords[name])
            for name in axis_names
        )
        rows.append(
            (cell.base_name,)
            + axis_cells
            + (
                f"{stats['transmissions'].mean:.1f}",
                f"{stats['mean_wait_s'].mean:.2f}s",
                f"{stats['energy_mj'].mean / 1000:.1f}J",
                f"{stats['segments_sent'].mean:.0f}",
            )
        )
    return Table(
        title=f"Scenario sweep over {' x '.join(axis_names)}",
        headers=("scenario",)
        + axis_names
        + ("transmissions", "mean wait", "fleet energy", "segments sent"),
        rows=tuple(rows),
        notes=(
            "every cell runs through the parallel Monte-Carlo backend "
            "and the columnar executor; grid size = scenarios x "
            + " x ".join(str(len(axis.values)) for axis in axes)
            + ".",
        ),
    )
