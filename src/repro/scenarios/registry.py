"""The named scenario registry.

Built-in scenarios span the regimes the related work says matter beyond
the paper's one-axis-at-a-time evaluation: user-density extremes
(dense-urban vs sparse metering, cf. Shahini & Ansari's clustering
density regimes), grouped random-access collision storms under massive
arrivals (cf. Han & Schotten), deep-coverage-heavy cells, lossy links
with NACK-driven repair, and mixed-traffic fleets. Each is a plain
:class:`~repro.scenarios.spec.ScenarioSpec`; external code can register
more with :func:`register_scenario`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.multicast.coordination import MultiCellSpec
from repro.scenarios.spec import ScenarioSpec
from repro.timebase import KILOBYTE, MEGABYTE
from repro.traffic.generator import CoverageMix

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, *, replace: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the registry (``replace=True`` to overwrite)."""
    if not replace and spec.name in _REGISTRY:
        raise ConfigurationError(
            f"scenario {spec.name!r} is already registered"
        )
    _REGISTRY[spec.name] = spec
    return spec


def scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        ) from None


def scenario_names() -> Tuple[str, ...]:
    """Registered names, in registration order."""
    return tuple(_REGISTRY)


def all_scenarios() -> List[ScenarioSpec]:
    """Every registered scenario, in registration order."""
    return list(_REGISTRY.values())


# ----------------------------------------------------------------------
# Built-ins. Sizes are chosen so `scenarios run --all --runs 2` stays a
# seconds-scale smoke while still exercising every regime; sweeps scale
# any of them up through the columnar executor.
# ----------------------------------------------------------------------

#: The paper's own regime: single cell, everyone in normal coverage,
#: contention-free RACH, lossless links.
PAPER_BASELINE = register_scenario(ScenarioSpec(
    name="paper-baseline",
    description="Sec. IV-A regime: normal coverage, no contention, lossless",
    n_devices=500,
    mixture="paper-default",
    mechanism="dr-sc",
    payload_bytes=MEGABYTE,
))

#: Dense city macrocell: big fleet, urban coverage split, mild RACH
#: contention from the sheer arrival rate.
DENSE_URBAN = register_scenario(ScenarioSpec(
    name="dense-urban",
    description="large urban fleet, 80/15/5 coverage split, mild contention",
    n_devices=1000,
    mixture="paper-default",
    coverage=CoverageMix(normal=0.80, robust=0.15, extreme=0.05),
    mechanism="dr-sc",
    payload_bytes=MEGABYTE,
    ra_collision_probability=0.05,
    segment_loss_probability=0.01,
))

#: Basement meters and rural cells: most of the fleet needs coverage
#: extension, so repetitions stretch every procedure and drag the
#: multicast bearer rate down to the worst member.
DEEP_COVERAGE_HEAVY = register_scenario(ScenarioSpec(
    name="deep-coverage-heavy",
    description="CE-heavy cell (30/45/25), slow bearers, lossier links",
    n_devices=300,
    mixture="moderate-edrx",
    coverage=CoverageMix(normal=0.30, robust=0.45, extreme=0.25),
    mechanism="da-sc",
    payload_bytes=100 * KILOBYTE,
    segment_loss_probability=0.03,
))

#: Massive synchronised arrivals: the grouped-random-access collision
#: regime of Han & Schotten — every paged device races for preambles.
CONTENTION_STORM = register_scenario(ScenarioSpec(
    name="contention-storm",
    description="RACH collision storm (p=0.35) on a responsive fleet",
    n_devices=400,
    mixture="short-edrx",
    mechanism="dr-sc",
    payload_bytes=100 * KILOBYTE,
    ra_collision_probability=0.35,
    ra_backoff_s=0.5,
    ra_max_attempts=20,
))

#: Cell-edge firmware rollout: heavy per-segment loss makes the
#: NACK-driven repair rounds the dominant airtime term.
LOSSY_LINK_REPAIR = register_scenario(ScenarioSpec(
    name="lossy-link-repair",
    description="15% segment loss, repair rounds dominate airtime",
    n_devices=200,
    mixture="paper-default",
    coverage=CoverageMix(normal=0.60, robust=0.25, extreme=0.15),
    mechanism="dr-si",
    payload_bytes=MEGABYTE,
    segment_loss_probability=0.15,
    max_repair_rounds=20,
))

#: Mixed traffic under simultaneous mild stress on every axis — the
#: "compose the axes" scenario the single-axis paper evaluation misses.
MIXED_TRAFFIC_STRESS = register_scenario(ScenarioSpec(
    name="mixed-traffic-stress",
    description="all axes mildly stressed at once (contention+loss+CE)",
    n_devices=500,
    mixture="paper-default",
    coverage=CoverageMix(normal=0.70, robust=0.20, extreme=0.10),
    mechanism="da-sc",
    payload_bytes=MEGABYTE,
    ra_collision_probability=0.10,
    segment_loss_probability=0.05,
))

#: Nationwide metering tier: everything asleep at the top of the eDRX
#: ladder, long TI, rare but large firmware images.
METERING_LONGSLEEP = register_scenario(ScenarioSpec(
    name="metering-longsleep",
    description="long-eDRX metering fleet, 10 MB image, long TI",
    n_devices=300,
    mixture="long-edrx",
    mechanism="dr-sc",
    payload_bytes=10 * MEGABYTE,
    inactivity_timer_s=40.96,
))

#: Logistics tracker swarm: short cycles, small frequent updates, the
#: regime where grouping wins least (windows hold few devices).
TRACKER_SWARM = register_scenario(ScenarioSpec(
    name="tracker-swarm",
    description="short-eDRX tracker swarm, small payload, short TI",
    n_devices=600,
    mixture="short-edrx",
    mechanism="da-sc",
    payload_bytes=100 * KILOBYTE,
    inactivity_timer_s=10.24,
))

#: The degenerate reference point every sweep can be normalised to.
UNICAST_REFERENCE = register_scenario(ScenarioSpec(
    name="unicast-reference",
    description="per-device unicast baseline on the paper fleet",
    n_devices=200,
    mixture="paper-default",
    mechanism="unicast",
    payload_bytes=MEGABYTE,
))

#: City-scale rollout: the operator distributes list and data to every
#: eNB the devices attach to (the multi-cell deployment of ref. [3]);
#: each cell plans and serves its own share on its own carrier.
CITY_ROLLOUT = register_scenario(ScenarioSpec(
    name="city-rollout",
    description="16-cell city campaign, uniform attachment, urban coverage",
    n_devices=2000,
    mixture="paper-default",
    coverage=CoverageMix(normal=0.80, robust=0.15, extreme=0.05),
    mechanism="dr-sc",
    payload_bytes=MEGABYTE,
    cells=MultiCellSpec(n_cells=16),
))

#: Non-uniform cell load: a few macro cells carry most of the fleet
#: while suburban cells see a trickle — the regime where per-cell
#: campaign durations diverge most.
SKEWED_CELLS = register_scenario(ScenarioSpec(
    name="skewed-cells",
    description="8 cells with skewed attachment (30%..2.5%), DA-SC",
    n_devices=800,
    mixture="moderate-edrx",
    coverage=CoverageMix(normal=0.70, robust=0.20, extreme=0.10),
    mechanism="da-sc",
    payload_bytes=100 * KILOBYTE,
    cells=MultiCellSpec(
        n_cells=8,
        weights=(0.30, 0.25, 0.15, 0.10, 0.075, 0.05, 0.05, 0.025),
    ),
))
