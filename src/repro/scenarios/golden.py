"""Golden-metrics regression pinning for registered scenarios.

Every registered scenario's headline metrics (mean wait, fleet
energy/uptime, segments sent, transmission count) are pinned to a
committed JSON file at a fixed, fast configuration (2 runs, capped
fleet). The integration suite recomputes them and fails if any metric
moves beyond tolerance, so a future PR cannot silently shift simulation
results; an intentional change re-pins with ``python -m repro scenarios
run --all --update-golden``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.scenarios.registry import all_scenarios, scenario
from repro.scenarios.runner import headline_means, run_scenario
from repro.scenarios.spec import ScenarioSpec

#: Monte-Carlo runs per scenario when computing golden metrics. Two is
#: enough to exercise the aggregation while keeping the whole registry
#: a seconds-scale check.
GOLDEN_RUNS = 2

#: Fleet-size cap applied when computing golden metrics (the registered
#: sizes are sweep-scale; regression pinning only needs determinism).
GOLDEN_DEVICE_CAP = 120

#: Relative tolerance for a metric to count as unmoved. The pipeline is
#: seeded and deterministic, so anything beyond float-reduction noise
#: is a real behavioural change.
GOLDEN_REL_TOL = 1e-9

#: The committed pin file.
GOLDEN_PATH = Path(__file__).with_name("golden_metrics.json")


def golden_spec(spec: ScenarioSpec) -> ScenarioSpec:
    """The reduced configuration a scenario is pinned at."""
    return spec.with_overrides(
        n_runs=GOLDEN_RUNS,
        n_devices=min(spec.n_devices, GOLDEN_DEVICE_CAP),
    )


def compute_golden_metrics(
    names: Optional[Sequence[str]] = None,
    *,
    backend: str = "serial",
    workers: Optional[int] = None,
    columnar: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Recompute the pinned headline metrics for ``names`` (default all)."""
    specs = (
        all_scenarios()
        if names is None
        else [scenario(name) for name in names]
    )
    out: Dict[str, Dict[str, float]] = {}
    for spec in specs:
        stats = run_scenario(
            golden_spec(spec),
            backend=backend,
            workers=workers,
            columnar=columnar,
        )
        out[spec.name] = headline_means(stats)
    return out


def load_golden(path: Optional[Path] = None) -> Dict[str, Dict[str, float]]:
    """The committed golden metrics, keyed by scenario name."""
    path = GOLDEN_PATH if path is None else Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigurationError(
            f"no golden metrics at {path}; pin them with "
            "`python -m repro scenarios run --all --update-golden`"
        ) from None
    if payload.get("runs") != GOLDEN_RUNS or payload.get(
        "device_cap"
    ) != GOLDEN_DEVICE_CAP:
        raise ConfigurationError(
            f"golden file {path} was pinned under different settings "
            f"(runs={payload.get('runs')}, device_cap="
            f"{payload.get('device_cap')}); re-pin it"
        )
    return payload["scenarios"]


def write_golden(
    metrics: Dict[str, Dict[str, float]], path: Optional[Path] = None
) -> Path:
    """Persist ``metrics`` as the new pin file."""
    path = GOLDEN_PATH if path is None else Path(path)
    payload = {
        "runs": GOLDEN_RUNS,
        "device_cap": GOLDEN_DEVICE_CAP,
        "scenarios": {
            name: dict(sorted(values.items()))
            for name, values in sorted(metrics.items())
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def diff_golden(
    current: Dict[str, Dict[str, float]],
    pinned: Dict[str, Dict[str, float]],
    rel_tol: float = GOLDEN_REL_TOL,
) -> List[str]:
    """Human-readable discrepancies between ``current`` and ``pinned``.

    Empty list = regression-free. Missing scenarios/metrics on either
    side are discrepancies too (a silently dropped scenario is as much a
    regression as a shifted metric).
    """
    problems: List[str] = []
    for name in sorted(set(pinned) - set(current)):
        problems.append(f"{name}: pinned scenario missing from current run")
    for name in sorted(set(current) - set(pinned)):
        problems.append(f"{name}: scenario not pinned (re-pin golden metrics)")
    for name in sorted(set(current) & set(pinned)):
        want, got = pinned[name], current[name]
        for metric in sorted(set(want) | set(got)):
            if metric not in got:
                problems.append(f"{name}.{metric}: missing from current run")
                continue
            if metric not in want:
                problems.append(f"{name}.{metric}: not pinned")
                continue
            if not math.isclose(
                got[metric], want[metric], rel_tol=rel_tol, abs_tol=rel_tol
            ):
                problems.append(
                    f"{name}.{metric}: pinned {want[metric]!r} but got "
                    f"{got[metric]!r}"
                )
    return problems
