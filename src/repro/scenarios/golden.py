"""Golden-metrics regression pinning for registered scenarios.

Every registered scenario's headline metrics (mean wait, fleet
energy/uptime, segments sent, transmission count) are pinned to a
committed JSON file at a fixed, fast configuration (2 runs, capped
fleet). The integration suite recomputes them and fails if any metric
moves beyond tolerance, so a future PR cannot silently shift simulation
results; an intentional change re-pins with ``python -m repro scenarios
run --all --update-golden``.

Next to the metric pins live *event-log pins*: run 0 of each golden
configuration, recorded as a ``.npz``
(:class:`~repro.sim.eventlog.RunLog`) under ``golden_runlogs/``. When
a metric drifts, the number alone says nothing about *where* the
simulation diverged — so the failure path re-records the drifted run
and attaches the structural event diff (first diverging event,
per-kind and per-device deltas, the ``runs diff`` machinery) to the
report. ``--update-golden`` refreshes both pin sets together.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.scenarios.registry import all_scenarios, scenario
from repro.scenarios.runner import headline_means, run_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.sim.eventlog import RunLog, diff_runlogs, format_runlog_diff

#: Monte-Carlo runs per scenario when computing golden metrics. Two is
#: enough to exercise the aggregation while keeping the whole registry
#: a seconds-scale check.
GOLDEN_RUNS = 2

#: Fleet-size cap applied when computing golden metrics (the registered
#: sizes are sweep-scale; regression pinning only needs determinism).
GOLDEN_DEVICE_CAP = 120

#: Relative tolerance for a metric to count as unmoved. The pipeline is
#: seeded and deterministic, so anything beyond float-reduction noise
#: is a real behavioural change.
GOLDEN_REL_TOL = 1e-9

#: The committed pin file.
GOLDEN_PATH = Path(__file__).with_name("golden_metrics.json")

#: Committed event-log pins: run 0 of each golden configuration.
GOLDEN_RUNLOG_DIR = Path(__file__).with_name("golden_runlogs")


def golden_spec(spec: ScenarioSpec) -> ScenarioSpec:
    """The reduced configuration a scenario is pinned at."""
    return spec.with_overrides(
        n_runs=GOLDEN_RUNS,
        n_devices=min(spec.n_devices, GOLDEN_DEVICE_CAP),
    )


def compute_golden_metrics(
    names: Optional[Sequence[str]] = None,
    *,
    backend: str = "serial",
    workers: Optional[int] = None,
    columnar: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Recompute the pinned headline metrics for ``names`` (default all)."""
    specs = (
        all_scenarios()
        if names is None
        else [scenario(name) for name in names]
    )
    out: Dict[str, Dict[str, float]] = {}
    for spec in specs:
        stats = run_scenario(
            golden_spec(spec),
            backend=backend,
            workers=workers,
            columnar=columnar,
        )
        out[spec.name] = headline_means(stats)
    return out


def load_golden(path: Optional[Path] = None) -> Dict[str, Dict[str, float]]:
    """The committed golden metrics, keyed by scenario name."""
    path = GOLDEN_PATH if path is None else Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigurationError(
            f"no golden metrics at {path}; pin them with "
            "`python -m repro scenarios run --all --update-golden`"
        ) from None
    if payload.get("runs") != GOLDEN_RUNS or payload.get(
        "device_cap"
    ) != GOLDEN_DEVICE_CAP:
        raise ConfigurationError(
            f"golden file {path} was pinned under different settings "
            f"(runs={payload.get('runs')}, device_cap="
            f"{payload.get('device_cap')}); re-pin it"
        )
    return payload["scenarios"]


def write_golden(
    metrics: Dict[str, Dict[str, float]], path: Optional[Path] = None
) -> Path:
    """Persist ``metrics`` as the new pin file."""
    path = GOLDEN_PATH if path is None else Path(path)
    payload = {
        "runs": GOLDEN_RUNS,
        "device_cap": GOLDEN_DEVICE_CAP,
        "scenarios": {
            name: dict(sorted(values.items()))
            for name, values in sorted(metrics.items())
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def golden_runlog_path(
    name: str, directory: Optional[Path] = None
) -> Path:
    """Where scenario ``name``'s event-log pin lives."""
    directory = GOLDEN_RUNLOG_DIR if directory is None else Path(directory)
    return directory / f"{name}.npz"


def record_golden_runlog(spec: ScenarioSpec) -> RunLog:
    """Record run 0 of ``spec``'s golden configuration."""
    from repro.scenarios.record import record_run

    return record_run(golden_spec(spec), run_index=0).runlog


def write_golden_runlogs(
    names: Optional[Sequence[str]] = None,
    directory: Optional[Path] = None,
) -> Dict[str, Path]:
    """Re-pin the event logs for ``names`` (default: every scenario)."""
    directory = GOLDEN_RUNLOG_DIR if directory is None else Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    specs = (
        all_scenarios()
        if names is None
        else [scenario(name) for name in names]
    )
    out: Dict[str, Path] = {}
    for spec in specs:
        runlog = record_golden_runlog(spec)
        out[spec.name] = runlog.save(golden_runlog_path(spec.name, directory))
    return out


def golden_event_diff(
    name: str, directory: Optional[Path] = None
) -> Optional[str]:
    """The structural event diff of scenario ``name`` against its pin.

    Re-records run 0 of the golden configuration and diffs it against
    the committed ``.npz`` with the ``runs diff`` machinery. Returns
    ``None`` when the logs are event-identical, a rendered diff when
    they diverge, and a pointer to re-pin when no pin exists — so a
    metric-drift report always carries the event-level story.
    """
    path = golden_runlog_path(name, directory)
    if not path.exists():
        return (
            f"no event-log pin at {path}; re-pin with "
            "`python -m repro scenarios run --all --update-golden`"
        )
    pinned = RunLog.load(path)
    fresh = record_golden_runlog(scenario(name))
    diff = diff_runlogs(pinned, fresh)
    if diff.is_empty and not diff.meta_notes:
        return None
    return format_runlog_diff(diff)


def drifted_scenarios(problems: Sequence[str]) -> List[str]:
    """The scenario names a :func:`diff_golden` report implicates."""
    names = []
    for problem in problems:
        name = problem.split(":", 1)[0].split(".", 1)[0]
        if name and name not in names:
            names.append(name)
    return names


def diff_golden(
    current: Dict[str, Dict[str, float]],
    pinned: Dict[str, Dict[str, float]],
    rel_tol: float = GOLDEN_REL_TOL,
) -> List[str]:
    """Human-readable discrepancies between ``current`` and ``pinned``.

    Empty list = regression-free. Missing scenarios/metrics on either
    side are discrepancies too (a silently dropped scenario is as much a
    regression as a shifted metric).
    """
    problems: List[str] = []
    for name in sorted(set(pinned) - set(current)):
        problems.append(f"{name}: pinned scenario missing from current run")
    for name in sorted(set(current) - set(pinned)):
        problems.append(f"{name}: scenario not pinned (re-pin golden metrics)")
    for name in sorted(set(current) & set(pinned)):
        want, got = pinned[name], current[name]
        for metric in sorted(set(want) | set(got)):
            if metric not in got:
                problems.append(f"{name}.{metric}: missing from current run")
                continue
            if metric not in want:
                problems.append(f"{name}.{metric}: not pinned")
                continue
            if not math.isclose(
                got[metric], want[metric], rel_tol=rel_tol, abs_tol=rel_tol
            ):
                problems.append(
                    f"{name}.{metric}: pinned {want[metric]!r} but got "
                    f"{got[metric]!r}"
                )
    return problems
