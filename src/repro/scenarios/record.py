"""Record, reconstruct and verify single scenario runs.

The bridge between the scenario layer and the columnar event log
(:mod:`repro.sim.eventlog`): :func:`record_run` reproduces exactly one
Monte-Carlo run of a spec — spawning the same child generator the
harness would hand run *k* — with event recording on, so a recorded
``.npz`` is a faithful witness of the run the aggregate statistics
already contain. :func:`runlog_headline_metrics` rebuilds the headline
metrics from a recorded run *alone* (STRICT replay, no re-simulation),
replicating the runner's float-fold order so the numbers are
bit-identical to the live run's. :func:`verify_runlog` closes the loop:
re-execute the run live from the registry and demand both the event
stream and the metrics match exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.scenarios.registry import scenario
from repro.scenarios.runner import HEADLINE_METRICS, scenario_run
from repro.scenarios.spec import ScenarioSpec
from repro.sim.eventlog import (
    RunLog,
    diff_runlogs,
    format_runlog_diff,
    replay_strict,
)
from repro.sim.events import EventKind
from repro.sim.rng import spawn_generators


@dataclass
class RecordedRun:
    """One recorded Monte-Carlo run: live metrics plus its event log."""

    spec: ScenarioSpec
    run_index: int
    metrics: Dict[str, float]
    runlog: RunLog


def record_run(
    spec: ScenarioSpec,
    run_index: int = 0,
    *,
    seed: Optional[int] = None,
    columnar: bool = True,
) -> RecordedRun:
    """Execute run ``run_index`` of ``spec`` with event recording on.

    The run's generator is spawned exactly as the Monte-Carlo harness
    spawns it (``SeedSequence(seed).spawn(n)[run_index]``), so the
    recorded run is the *same* run that contributes row ``run_index``
    to ``run_scenario``'s aggregated metric arrays — child ``k`` of a
    seed sequence does not depend on how many siblings were spawned.
    """
    if run_index < 0:
        raise ConfigurationError(f"run_index must be >= 0, got {run_index}")
    root_seed = spec.seed if seed is None else seed
    n = max(spec.n_runs, run_index + 1)
    rng = spawn_generators(root_seed, n)[run_index]
    recording: List[RunLog] = []
    metrics = scenario_run(
        rng, run_index, spec, columnar=columnar, recording=recording
    )
    runlog = recording[0]
    runlog.meta["seed"] = int(root_seed)
    return RecordedRun(
        spec=spec, run_index=run_index, metrics=metrics, runlog=runlog
    )


def runlog_headline_metrics(runlog: RunLog) -> Dict[str, float]:
    """The headline metrics of a recorded run, from the log alone.

    Every cell's :class:`~repro.sim.metrics.CampaignResult` is rebuilt
    by the STRICT replayer and folded into run metrics in exactly the
    order :func:`~repro.scenarios.runner.scenario_run` folds the live
    results (single-cell direct reads; multi-cell Python sums over
    campaigns in ascending cell order, device-weighted mean wait), so
    the values are bit-identical to the live run's — not merely close.
    """
    cell_ids = sorted(runlog.cells)
    logs = [runlog.cells[cell_id] for cell_id in cell_ids]
    results = [replay_strict(log) for log in logs]
    segments = [
        int(log.of_kind(EventKind.REPAIR_ROUND)["a"].sum()) for log in logs
    ]
    multi_cell = int(runlog.meta.get("n_cells", len(logs))) > 1
    if not multi_cell:
        result = results[0]
        fleet = result.fleet
        return {
            "transmissions": float(result.n_transmissions),
            "mean_wait_s": result.mean_wait_s,
            "uptime_s": fleet.light_sleep_s + fleet.connected_s,
            "energy_mj": fleet.energy_mj,
            "segments_sent": float(segments[0]),
        }
    total_devices = sum(r.n_devices for r in results)
    light_sleep_s = sum(r.fleet.light_sleep_s for r in results)
    connected_s = sum(r.fleet.connected_s for r in results)
    return {
        "transmissions": float(sum(r.n_transmissions for r in results)),
        "mean_wait_s": (
            sum(r.mean_wait_s * r.n_devices for r in results) / total_devices
        ),
        "uptime_s": light_sleep_s + connected_s,
        "energy_mj": sum(r.fleet.energy_mj for r in results),
        "segments_sent": float(sum(segments)),
    }


def rerecord(runlog: RunLog, *, columnar: bool = True) -> RecordedRun:
    """Re-execute a recorded run live, from the scenario registry.

    The log's run key (scenario name, spec fingerprint, seed, run
    index) identifies the run; a fingerprint mismatch against the
    registered spec means the scenario definition has drifted since the
    recording and is an error, not a silent re-run of something else.
    """
    meta = runlog.meta
    name = meta.get("scenario")
    if not name:
        raise SimulationError("run log metadata has no scenario name")
    spec = scenario(str(name))
    recorded_fp = meta.get("fingerprint")
    if recorded_fp and spec.fingerprint() != recorded_fp:
        raise SimulationError(
            f"scenario {name!r} has changed since this log was recorded "
            f"(fingerprint {spec.fingerprint()[:12]} != "
            f"recorded {str(recorded_fp)[:12]})"
        )
    seed = int(meta.get("seed", spec.seed))
    run_index = int(meta.get("run_index", 0))
    return record_run(spec, run_index, seed=seed, columnar=columnar)


def verify_runlog(runlog: RunLog, *, columnar: bool = True) -> List[str]:
    """Findings against a recorded run; an empty list means verified.

    Two independent checks: (1) re-execute the run live and demand the
    fresh event stream is identical to the recorded one; (2) rebuild
    the headline metrics from the log alone and demand exact float
    equality with the live run's metrics.
    """
    findings: List[str] = []
    fresh = rerecord(runlog, columnar=columnar)
    diff = diff_runlogs(runlog, fresh.runlog)
    if not diff.is_empty:
        findings.append(format_runlog_diff(diff))
    rebuilt = runlog_headline_metrics(runlog)
    for key in HEADLINE_METRICS:
        live = fresh.metrics[key]
        if rebuilt[key] != live:
            findings.append(
                f"metric {key}: log-only {rebuilt[key]!r} != live {live!r}"
            )
    return findings
