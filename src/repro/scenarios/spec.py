"""The declarative scenario specification.

A :class:`ScenarioSpec` names everything one simulated deployment
regime needs — fleet shape (size, traffic mixture, coverage-class mix),
radio stress (random-access collision probability, segment-loss/repair
regime) and campaign shape (mechanism, payload, inactivity timer,
Monte-Carlo runs and seed) — as one frozen, picklable dataclass. Specs
cross process-pool boundaries intact, fingerprint stably for the result
cache, and derive variants with :meth:`ScenarioSpec.with_overrides`
(the sweep runner's expansion primitive).

Traffic mixtures are referenced *by name* (resolved through
:func:`repro.traffic.mixture_by_name`): a string survives pickling and
keeps the spec's fingerprint independent of mixture object identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.core.base import PlanningContext
from repro.devices.battery import Battery
from repro.grouping.registry import grouping_policy_factory
from repro.enb.cell import CellConfig
from repro.errors import ConfigurationError
from repro.multicast.coordination import MultiCellSpec
from repro.multicast.payload import DEFAULT_SEGMENT_BYTES, FirmwareImage
from repro.multicast.reliability import ReliabilityConfig
from repro.rrc.procedures import ProcedureTimings
from repro.rrc.random_access import RandomAccessModel
from repro.sim.parallel import fingerprint
from repro.timebase import seconds_to_frames
from repro.traffic.generator import CoverageMix
from repro.traffic.mixtures import TrafficMixture, mixture_by_name


@dataclass(frozen=True)
class ScenarioSpec:
    """One named deployment/stress regime, declaratively.

    Attributes:
        name: registry key (kebab-case).
        description: one-line human summary shown by ``scenarios list``.
        n_devices: fleet size sampled per run.
        mixture: traffic-mixture name (see :data:`repro.traffic.MIXTURES`).
        coverage: coverage-class shares of the fleet.
        mechanism: grouping mechanism name (``dr-sc``/``da-sc``/``dr-si``/
            ``unicast``, or any name added via
            :func:`repro.core.registry.register_mechanism`).
        grouping: grouping-policy name (see
            :data:`repro.grouping.GROUPING_POLICIES`), or None for the
            mechanism's own default (greedy cover for ``dr-sc``, a
            single fleet-wide group for ``da-sc``/``dr-si``) — the
            bit-identical paper semantics.
        payload_bytes: firmware image size delivered per campaign.
        inactivity_timer_s: the TI window length.
        ra_collision_probability: per-attempt RACH collision probability
            (0 = the paper's contention-free evaluation).
        ra_backoff_s: mean exponential backoff between RACH retries.
        ra_max_attempts: RACH give-up bound.
        segment_loss_probability: per-device per-segment loss rate for
            the NACK-driven repair model (0 = lossless).
        max_repair_rounds: repair-round give-up bound.
        segment_bytes: link-layer segment size.
        cells: multi-cell deployment shape (cell count plus optional
            non-uniform attachment weights); the default single cell
            reproduces the paper's evaluation.
        n_runs: Monte-Carlo repetitions.
        seed: root seed (children spawned per run).
        battery_mah: battery capacity behind the energy-drain metric.
        record_events: emit a columnar event log per (run, cell) — see
            :mod:`repro.sim.eventlog`. Observability only: excluded
            from the fingerprint, since recording never changes what a
            run computes.
    """

    name: str
    description: str = ""
    n_devices: int = 200
    mixture: str = "paper-default"
    coverage: CoverageMix = CoverageMix()
    mechanism: str = "dr-sc"
    grouping: Optional[str] = None
    payload_bytes: int = 1_000_000
    inactivity_timer_s: float = 20.48
    ra_collision_probability: float = 0.0
    ra_backoff_s: float = 0.25
    ra_max_attempts: int = 10
    segment_loss_probability: float = 0.0
    max_repair_rounds: int = 10
    segment_bytes: int = DEFAULT_SEGMENT_BYTES
    cells: MultiCellSpec = MultiCellSpec()
    n_runs: int = 20
    seed: int = 2018
    battery_mah: float = 5000.0
    record_events: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a scenario needs a non-empty name")
        if self.n_devices < 1:
            raise ConfigurationError(
                f"n_devices must be >= 1, got {self.n_devices}"
            )
        # Route both names through the registries, so dynamically
        # registered mechanisms and grouping policies validate too —
        # and instantiate the pairing, so an incompatible combination
        # (e.g. dr-sc x single-group) fails at spec creation rather
        # than deep inside a sweep's Monte-Carlo worker.
        self.mechanism_obj()  # raises on unknown names / bad pairings
        mixture_by_name(self.mixture)  # raises on unknown names
        if self.payload_bytes < 1:
            raise ConfigurationError(
                f"payload must be >= 1 byte, got {self.payload_bytes}"
            )
        if self.inactivity_timer_s <= 0:
            raise ConfigurationError(
                f"TI must be positive, got {self.inactivity_timer_s}"
            )
        if self.n_runs < 1:
            raise ConfigurationError(f"n_runs must be >= 1, got {self.n_runs}")
        if not isinstance(self.cells, MultiCellSpec):
            raise ConfigurationError(
                f"cells must be a MultiCellSpec, got {self.cells!r}"
            )
        # The RA / reliability sub-models re-validate their own ranges.
        self.timings()
        self.reliability()
        Battery(capacity_mah=self.battery_mah)

    # ------------------------------------------------------------------
    # Derived model objects
    # ------------------------------------------------------------------
    def mixture_obj(self) -> TrafficMixture:
        """The resolved traffic mixture."""
        return mixture_by_name(self.mixture)

    def grouping_policy(self):
        """The resolved grouping policy (None = mechanism default)."""
        if self.grouping is None:
            return None
        return grouping_policy_factory(self.grouping)()

    def mechanism_obj(self):
        """The mechanism instance, carrying this spec's grouping policy."""
        from repro.core.registry import mechanism_by_name

        return mechanism_by_name(self.mechanism, policy=self.grouping_policy())

    def timings(self) -> ProcedureTimings:
        """Control-plane timings with this scenario's RACH stress."""
        return ProcedureTimings(
            random_access=RandomAccessModel(
                collision_probability=self.ra_collision_probability,
                backoff_s=self.ra_backoff_s,
                max_attempts=self.ra_max_attempts,
            )
        )

    def reliability(self) -> ReliabilityConfig:
        """The segment-loss/repair regime."""
        return ReliabilityConfig(
            segment_bytes=self.segment_bytes,
            segment_loss_probability=self.segment_loss_probability,
            max_rounds=self.max_repair_rounds,
        )

    def battery(self) -> Battery:
        """The battery behind the energy-drain metric."""
        return Battery(capacity_mah=self.battery_mah)

    def image(self) -> FirmwareImage:
        """The firmware image a campaign delivers."""
        return FirmwareImage(
            name=f"{self.name}-fw", version="1.0.0", size_bytes=self.payload_bytes
        )

    def cell(self) -> CellConfig:
        """Cell configuration with this scenario's inactivity timer."""
        return CellConfig(
            inactivity_timer_frames=seconds_to_frames(self.inactivity_timer_s)
        )

    def planning_context(self) -> PlanningContext:
        """The planning context campaigns run under."""
        return PlanningContext(
            payload_bytes=self.payload_bytes,
            cell=self.cell(),
            timings=self.timings(),
        )

    # ------------------------------------------------------------------
    # Derivation / identity
    # ------------------------------------------------------------------
    def with_overrides(self, **overrides: Any) -> "ScenarioSpec":
        """A validated copy with ``overrides`` applied (sweep primitive)."""
        unknown = set(overrides) - set(self.__dataclass_fields__)
        if unknown:
            raise ConfigurationError(
                f"unknown scenario fields {sorted(unknown)}; "
                f"available: {sorted(self.__dataclass_fields__)}"
            )
        return replace(self, **overrides)

    def fingerprint(self) -> str:
        """Stable hash of every *semantic* scenario parameter.

        ``record_events`` is excluded: recording is observability, not
        simulation input, so a recorded run shares its cache key — and
        its log is comparable — with the unrecorded run it mirrors.
        """
        fields = {
            name: getattr(self, name)
            for name in self.__dataclass_fields__
            if name != "record_events"
        }
        return fingerprint(fields)

    def summary_fields(self) -> Dict[str, Any]:
        """The fields ``scenarios list`` tabulates."""
        return {
            "devices": self.n_devices,
            "mixture": self.mixture,
            "mechanism": self.mechanism,
            "grouping": self.grouping or "default",
            "payload": self.payload_bytes,
            "collision": self.ra_collision_probability,
            "loss": self.segment_loss_probability,
            "cells": self.cells.n_cells,
            "runs": self.n_runs,
        }
