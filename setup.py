"""Setup shim.

Kept so that ``pip install -e .`` works on environments without the
``wheel`` package (legacy editable installs); all real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
